"""Tests for repro.analysis.bubbles (§7 future work)."""

import pytest

from repro.analysis.bubbles import (
    BubbleEscapeReranker,
    BubbleMap,
    identify_bubbles,
    recommendation_locality,
)
from repro.baselines.base import Recommendation
from repro.core.simgraph import SimGraph
from repro.graph.digraph import DiGraph


def two_bubble_simgraph() -> SimGraph:
    """Two similarity cliques: users 0-2 and users 10-12."""
    g = DiGraph()
    for base in (0, 10):
        members = [base + i for i in range(3)]
        for u in members:
            for v in members:
                if u != v:
                    g.add_edge(u, v, weight=0.5)
    return SimGraph(g, tau=0.0)


@pytest.fixture
def bubbles():
    return identify_bubbles(two_bubble_simgraph(), seed=0)


class TestIdentifyBubbles:
    def test_two_bubbles_found(self, bubbles):
        assert bubbles.bubble_count == 2
        assert bubbles.bubble_of(0) == bubbles.bubble_of(2)
        assert bubbles.bubble_of(0) != bubbles.bubble_of(10)

    def test_unknown_user_none(self, bubbles):
        assert bubbles.bubble_of(99) is None

    def test_members_and_sizes(self, bubbles):
        label = bubbles.bubble_of(0)
        assert bubbles.members(label) == {0, 1, 2}
        assert set(bubbles.sizes().values()) == {3}

    def test_on_synthetic_simgraph(self, small_dataset):
        from repro.core import RetweetProfiles, SimGraphBuilder

        profiles = RetweetProfiles(small_dataset.retweets())
        simgraph = SimGraphBuilder(tau=0.005).build(
            small_dataset.follow_graph, profiles
        )
        bubbles = identify_bubbles(simgraph, seed=0)
        assert bubbles.bubble_count >= 1
        assert len(bubbles.labels) == simgraph.node_count


class TestRecommendationLocality:
    def test_fully_local(self, bubbles):
        recs = [Recommendation(user=0, tweet=5, score=0.5, time=0.0)]
        audience = {5: [1, 2]}  # same bubble as user 0
        assert recommendation_locality(recs, bubbles, audience) == 1.0

    def test_fully_foreign(self, bubbles):
        recs = [Recommendation(user=0, tweet=5, score=0.5, time=0.0)]
        audience = {5: [10, 11]}
        assert recommendation_locality(recs, bubbles, audience) == 0.0

    def test_unassessable_skipped(self, bubbles):
        recs = [
            Recommendation(user=99, tweet=5, score=0.5, time=0.0),  # no bubble
            Recommendation(user=0, tweet=6, score=0.5, time=0.0),  # no audience
        ]
        assert recommendation_locality(recs, bubbles, {}) == 0.0

    def test_majority_rule(self, bubbles):
        recs = [Recommendation(user=0, tweet=5, score=0.5, time=0.0)]
        audience = {5: [1, 10]}  # split audience counts as local (>= half)
        assert recommendation_locality(recs, bubbles, audience) == 1.0


class TestBubbleEscapeReranker:
    def test_invalid_weight_rejected(self, bubbles):
        with pytest.raises(ValueError):
            BubbleEscapeReranker(bubbles, escape_weight=1.5)

    def test_novelty_bounds(self, bubbles):
        reranker = BubbleEscapeReranker(bubbles)
        assert reranker.novelty(0, 5, {5: [1, 2]}) == 0.0
        assert reranker.novelty(0, 5, {5: [10, 11]}) == 1.0
        assert reranker.novelty(0, 5, {5: [1, 10]}) == pytest.approx(0.5)
        assert reranker.novelty(99, 5, {5: [1]}) == 0.0

    def test_zero_weight_preserves_ranking(self, bubbles):
        reranker = BubbleEscapeReranker(bubbles, escape_weight=0.0)
        recs = [
            Recommendation(user=0, tweet=5, score=0.9, time=0.0),
            Recommendation(user=0, tweet=6, score=0.4, time=0.0),
        ]
        out = reranker.rerank(recs, {5: [1], 6: [10]})
        assert [r.tweet for r in out] == [5, 6]
        assert out[0].score == pytest.approx(0.9)

    def test_escape_promotes_cross_bubble_content(self, bubbles):
        reranker = BubbleEscapeReranker(bubbles, escape_weight=1.0)
        recs = [
            Recommendation(user=0, tweet=5, score=0.6, time=0.0),  # local
            Recommendation(user=0, tweet=6, score=0.5, time=0.0),  # foreign
        ]
        audience = {5: [1, 2], 6: [10, 11]}
        out = reranker.rerank(recs, audience)
        # The foreign tweet wins despite a lower raw score.
        assert out[0].tweet == 6

    def test_partial_weight_trades_off(self, bubbles):
        recs = [
            Recommendation(user=0, tweet=5, score=0.6, time=0.0),
            Recommendation(user=0, tweet=6, score=0.5, time=0.0),
        ]
        audience = {5: [1, 2], 6: [10, 11]}
        mild = BubbleEscapeReranker(bubbles, escape_weight=0.1)
        strong = BubbleEscapeReranker(bubbles, escape_weight=0.9)
        assert mild.rerank(recs, audience)[0].tweet == 5
        assert strong.rerank(recs, audience)[0].tweet == 6

    def test_scores_never_negative(self, bubbles):
        reranker = BubbleEscapeReranker(bubbles, escape_weight=0.5)
        recs = [Recommendation(user=0, tweet=5, score=0.3, time=0.0)]
        out = reranker.rerank(recs, {5: [1]})
        assert out[0].score >= 0.0
