"""Tests for repro.core.linear (paper §5.2-5.3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.linear import LinearSystem
from repro.core.propagation import PropagationEngine
from repro.core.simgraph import SimGraph
from repro.exceptions import ConvergenceError
from repro.graph.digraph import DiGraph

from tests.conftest import U, W, X


class TestStructure:
    def test_size_and_users(self, paper_example):
        system = LinearSystem(paper_example)
        assert system.size == 5
        assert system.users == [0, 1, 2, 3, 4]

    def test_matrix_rows_sum(self, paper_example):
        system = LinearSystem(paper_example)
        A = system.matrix()
        # Row of u: 1 on the diagonal, -sim/|Fu| elsewhere.
        # u has Fu = {v, w}: off-diagonal mass = (0.3 + 0.5)/2 = 0.4.
        row = A.getrow(0).toarray().ravel()
        assert row[0] == pytest.approx(1.0)
        assert row[1] == pytest.approx(-0.15)
        assert row[2] == pytest.approx(-0.25)

    def test_seed_rows_identity(self, paper_example):
        system = LinearSystem(paper_example)
        A = system.matrix(seeds=[W])
        row = A.getrow(W).toarray().ravel()
        assert row[W] == pytest.approx(1.0)
        assert abs(row).sum() == pytest.approx(1.0)


class TestDiagnostics:
    def test_diagonally_dominant(self, paper_example):
        assert LinearSystem(paper_example).is_diagonally_dominant()

    def test_iteration_norm_below_one(self, paper_example):
        norm = LinearSystem(paper_example).iteration_norm()
        assert 0.0 < norm < 1.0

    def test_spectral_radius_below_norm(self, paper_example):
        system = LinearSystem(paper_example)
        assert system.spectral_radius_estimate() <= (
            system.iteration_norm() + 1e-9
        )

    def test_empty_system(self):
        system = LinearSystem(SimGraph(DiGraph(), tau=0.0))
        assert system.size == 0
        assert system.iteration_norm() == 0.0
        assert system.spectral_radius_estimate() == 0.0


class TestSolvers:
    @pytest.mark.parametrize("method", ["jacobi", "gauss_seidel", "sor"])
    def test_solvers_match_direct(self, paper_example, method):
        system = LinearSystem(paper_example)
        direct = system.solve_direct(seeds=[X])
        solver = getattr(system, f"solve_{method}")
        iterative = solver(seeds=[X])
        for user in range(5):
            assert iterative.probabilities.get(user, 0.0) == pytest.approx(
                direct.probabilities.get(user, 0.0), abs=1e-8
            )

    def test_solution_matches_paper_example(self, paper_example):
        system = LinearSystem(paper_example)
        stats = system.solve_jacobi(seeds=[X])
        assert stats.probabilities[W] == pytest.approx(0.25, abs=1e-9)
        assert stats.probabilities[U] == pytest.approx(0.0625, abs=1e-9)

    def test_matches_iterative_engine(self, paper_example):
        system = LinearSystem(paper_example)
        engine = PropagationEngine(paper_example)
        algebraic = system.solve_jacobi(seeds=[X]).probabilities
        iterative = engine.propagate(seeds=[X]).probabilities
        for user in set(algebraic) | set(iterative):
            assert algebraic.get(user, 0.0) == pytest.approx(
                iterative.get(user, 0.0), abs=1e-8
            )

    def test_sor_omega_validation(self, paper_example):
        system = LinearSystem(paper_example)
        with pytest.raises(ValueError):
            system.solve_sor(seeds=[X], omega=0.0)
        with pytest.raises(ValueError):
            system.solve_sor(seeds=[X], omega=2.0)

    def test_convergence_error_on_tiny_budget(self, paper_example):
        system = LinearSystem(paper_example)
        with pytest.raises(ConvergenceError):
            system.solve_jacobi(seeds=[X], max_iterations=1, tolerance=0.0)

    def test_gauss_seidel_iterations_not_more_than_jacobi(self, paper_example):
        system = LinearSystem(paper_example)
        jacobi = system.solve_jacobi(seeds=[X])
        gauss_seidel = system.solve_gauss_seidel(seeds=[X])
        assert gauss_seidel.iterations <= jacobi.iterations

    def test_no_seeds_zero_solution(self, paper_example):
        system = LinearSystem(paper_example)
        stats = system.solve_jacobi(seeds=[])
        assert stats.probabilities == {}


@st.composite
def random_simgraph(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.floats(min_value=0.05, max_value=0.95),
            ).filter(lambda e: e[0] != e[1]),
            max_size=20,
        )
    )
    graph = DiGraph()
    graph.add_nodes(range(n))
    for u, v, w in edges:
        graph.add_edge(u, v, weight=w)
    seeds = draw(st.sets(st.integers(0, n - 1), min_size=1, max_size=2))
    return SimGraph(graph, tau=0.0), seeds


@settings(max_examples=40, deadline=None)
@given(random_simgraph())
def test_every_simgraph_system_is_dominant_and_solvable(data):
    """Property (§5.3): every SimGraph system is diagonally dominant and
    all three iterative solvers agree with the direct solution."""
    simgraph, seeds = data
    system = LinearSystem(simgraph)
    assert system.is_diagonally_dominant()
    direct = system.solve_direct(seeds)
    for method in ("solve_jacobi", "solve_gauss_seidel", "solve_sor"):
        stats = getattr(system, method)(seeds)
        for user in set(direct.probabilities) | set(stats.probabilities):
            assert stats.probabilities.get(user, 0.0) == pytest.approx(
                direct.probabilities.get(user, 0.0), abs=1e-7
            )


class TestBatchJacobi:
    def test_matches_single_solves(self, paper_example):
        system = LinearSystem(paper_example)
        seed_sets = [{X}, {W}, {X, U}]
        batch = system.solve_many_jacobi(seed_sets)
        for seeds, solved in zip(seed_sets, batch):
            single = system.solve_jacobi(seeds).probabilities
            for user in set(single) | set(solved):
                assert solved.get(user, 0.0) == pytest.approx(
                    single.get(user, 0.0), abs=1e-8
                )

    def test_empty_batch(self, paper_example):
        assert LinearSystem(paper_example).solve_many_jacobi([]) == []

    def test_seeds_outside_graph_ignored(self, paper_example):
        system = LinearSystem(paper_example)
        batch = system.solve_many_jacobi([{999}])
        assert batch[0] == {}

    def test_budget_exhaustion_raises(self, paper_example):
        system = LinearSystem(paper_example)
        with pytest.raises(ConvergenceError):
            system.solve_many_jacobi([{X}], max_iterations=1, tolerance=0.0)


class TestBatchDirect:
    def test_matches_single_solves(self, paper_example):
        system = LinearSystem(paper_example)
        seed_sets = [{X}, {W}, {X, U}]
        batch = system.solve_many_direct(seed_sets)
        for seeds, solved in zip(seed_sets, batch):
            single = system.solve_direct(seeds).probabilities
            assert set(solved) == set(single)
            for user, p in single.items():
                assert solved[user] == pytest.approx(p, abs=1e-10)

    def test_empty_batch(self, paper_example):
        assert LinearSystem(paper_example).solve_many_direct([]) == []

    def test_seeds_outside_graph_ignored(self, paper_example):
        system = LinearSystem(paper_example)
        assert system.solve_many_direct([{999}])[0] == {}

    def test_empty_system(self):
        system = LinearSystem(SimGraph(DiGraph(), tau=0.0))
        assert system.solve_many_direct([{X}, {W}]) == [{}, {}]

    def test_per_block_fallback_matches_stacked(self, paper_example,
                                                monkeypatch):
        # Force the large-batch path (per-block solves) and check it is
        # indistinguishable from the block-diagonal stacking.
        seed_sets = [{X}, {W}, {X, U}]
        system = LinearSystem(paper_example)
        stacked = system.solve_many_direct(seed_sets)
        monkeypatch.setattr(LinearSystem, "_STACK_LIMIT", 1)
        looped = system.solve_many_direct(seed_sets)
        assert [set(s) for s in looped] == [set(s) for s in stacked]
        for one, other in zip(stacked, looped):
            for user, p in one.items():
                assert other[user] == pytest.approx(p, abs=1e-12)
