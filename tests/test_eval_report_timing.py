"""Tests for repro.eval.report and repro.eval.timing."""

import pytest

from repro.baselines.base import Recommendation, Recommender
from repro.eval.metrics import KMetrics
from repro.eval.report import SweepReport
from repro.eval.timing import time_method


def km(k, hits=0, f1=0.0, pairs=()):
    return KMetrics(
        k=k,
        delivered=hits,
        recs_per_user_day=1.0,
        hits=hits,
        precision=0.0,
        recall=0.0,
        f1=f1,
        mean_hit_popularity=0.0,
        mean_advance_seconds=0.0,
        hit_pairs=frozenset(pairs),
    )


class TestSweepReport:
    def make(self):
        return SweepReport(
            k_values=[10, 20],
            series={
                "SimGraph": [km(10, 5, 0.5, [(1, 0)]), km(20, 8, 0.4, [(1, 0), (2, 2)])],
                "CF": [km(10, 3, 0.2, [(1, 0)]), km(20, 9, 0.3, [(3, 3)])],
            },
        )

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SweepReport(k_values=[10], series={"a": []})

    def test_metric_grid(self):
        report = self.make()
        grid = report.metric_grid("hits")
        assert grid == [[10, 5, 3], [20, 8, 9]]

    def test_render_contains_values(self):
        rendered = self.make().render("hits", "Hits")
        assert "SimGraph" in rendered and "CF" in rendered
        assert "Hits" in rendered

    def test_overlap_rows(self):
        report = self.make()
        rows = report.overlap_with("SimGraph")
        # At k=10 CF's single hit is shared: sigma = 1.0.
        assert rows[0][2] == pytest.approx(1.0)
        # At k=20 CF's hit is not shared: sigma = 0.0.
        assert rows[1][2] == pytest.approx(0.0)
        # Self-overlap is always 1.
        assert rows[0][1] == pytest.approx(1.0)

    def test_overlap_unknown_reference_rejected(self):
        with pytest.raises(KeyError):
            self.make().overlap_with("nope")

    def test_render_overlap(self):
        rendered = self.make().render_overlap("SimGraph", "Fig 13")
        assert "Fig 13" in rendered

    def test_best_k(self):
        report = self.make()
        assert report.best_k("f1", "SimGraph") == 10
        assert report.best_k("f1", "CF") == 20

    def test_methods_order(self):
        assert self.make().methods == ["SimGraph", "CF"]


class SleepyRecommender(Recommender):
    name = "Sleepy"

    def fit(self, dataset, train, target_users=None):
        self.fitted = True

    def on_event(self, event):
        return [Recommendation(0, event.tweet, 0.5, event.time)]


class TestTimeMethod:
    def test_reports_phases(self, tiny_dataset):
        events = tiny_dataset.retweets()
        report = time_method(
            SleepyRecommender(), tiny_dataset, events[:3], events[3:], {0}
        )
        assert report.name == "Sleepy"
        assert report.init_seconds >= 0.0
        assert report.stream_seconds >= 0.0
        assert report.events == 2
        assert report.total_seconds == pytest.approx(
            report.init_seconds + report.stream_seconds
        )

    def test_max_events_truncates(self, tiny_dataset):
        events = tiny_dataset.retweets()
        report = time_method(
            SleepyRecommender(), tiny_dataset, events[:1], events[1:], {0},
            max_events=2,
        )
        assert report.events == 2

    def test_row_shape(self, tiny_dataset):
        events = tiny_dataset.retweets()
        report = time_method(
            SleepyRecommender(), tiny_dataset, events[:3], events[3:], {0}
        )
        row = report.row()
        assert row[0] == "Sleepy"
        assert len(row) == 6
