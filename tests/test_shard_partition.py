"""Property and regression tests of the community-aware partitioner."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigError
from repro.graph.digraph import DiGraph
from repro.shard.partition import (
    ShardPlan,
    assignment_fingerprint,
    intra_shard_edges,
    partition_users,
)
from repro.synth import SynthConfig, generate_dataset


def _graph_from_edges(n_users: int, edges: list[tuple[int, int]]) -> DiGraph:
    graph = DiGraph()
    for user in range(n_users):
        graph.add_node(user)
    for u, v in edges:
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
    return graph


@st.composite
def random_graphs(draw):
    n_users = draw(st.integers(min_value=0, max_value=60))
    n_edges = draw(st.integers(min_value=0, max_value=150))
    edges = [
        (
            draw(st.integers(min_value=0, max_value=max(n_users - 1, 0))),
            draw(st.integers(min_value=0, max_value=max(n_users - 1, 0))),
        )
        for _ in range(n_edges if n_users else 0)
    ]
    return _graph_from_edges(n_users, edges)


@given(
    graph=random_graphs(),
    n_shards=st.sampled_from([1, 2, 4, 8]),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=40)
def test_every_user_assigned_exactly_once(graph, n_shards, seed):
    plan = partition_users(graph, n_shards, seed=seed)
    assert set(plan.assignment) == set(graph.nodes())
    per_shard = plan.shard_users()
    flat = [u for bucket in per_shard for u in bucket]
    assert sorted(flat) == sorted(graph.nodes())
    assert len(flat) == len(set(flat))
    for user in graph.nodes():
        assert 0 <= plan.owner(user) < n_shards


@given(
    graph=random_graphs(),
    n_shards=st.sampled_from([1, 2, 4, 8]),
    tolerance=st.sampled_from([0.0, 0.25, 0.5]),
)
@settings(max_examples=40)
def test_shard_sizes_within_balance_tolerance(graph, n_shards, tolerance):
    plan = partition_users(graph, n_shards, balance_tolerance=tolerance)
    n = graph.node_count
    if n == 0:
        assert plan.shard_sizes() == (0,) * n_shards
        return
    capacity = math.ceil(n * (1.0 + tolerance) / n_shards)
    assert plan.capacity == max(1, capacity)
    assert max(plan.shard_sizes()) <= plan.capacity


@given(graph=random_graphs(), n_shards=st.sampled_from([1, 2, 4, 8]))
@settings(max_examples=40)
def test_boundary_edges_complement_intra_shard_edges(graph, n_shards):
    plan = partition_users(graph, n_shards)
    boundary = set(plan.boundary_edges(graph))
    intra = set(intra_shard_edges(plan, graph))
    every = {(u, v) for u, v, _ in graph.edges()}
    assert boundary | intra == every
    assert boundary & intra == set()


@given(
    graph=random_graphs(),
    n_shards=st.sampled_from([1, 2, 4, 8]),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=25)
def test_deterministic_for_fixed_seed(graph, n_shards, seed):
    first = partition_users(graph, n_shards, seed=seed)
    second = partition_users(graph, n_shards, seed=seed)
    assert first.assignment == second.assignment
    assert assignment_fingerprint(first) == assignment_fingerprint(second)


def test_owner_modulo_fallback_for_unassigned_users():
    plan = ShardPlan(
        n_shards=3, seed=0, balance_tolerance=0.25, capacity=2,
        assignment={10: 1},
    )
    assert plan.owner(10) == 1
    assert plan.owner(11) == 11 % 3
    assert plan.owner(12) == 12 % 3


def test_rejects_invalid_parameters():
    graph = DiGraph()
    with pytest.raises(ConfigError):
        partition_users(graph, 0)
    with pytest.raises(ConfigError):
        partition_users(graph, 2, balance_tolerance=-0.1)


def test_empty_graph_partitions_cleanly():
    plan = partition_users(DiGraph(), 4)
    assert plan.assignment == {}
    assert plan.capacity == 0
    assert plan.shard_sizes() == (0, 0, 0, 0)


# The pinned golden corpus: regression net for the RNG-seeded
# tie-breaking fix — label propagation visit order comes from the named
# service RNG stream, so the assignment must never drift across runs,
# machines, or unrelated changes to other random consumers.
GOLDEN_FINGERPRINTS = {
    2: "64159f9d66b177652b7d5ce98ddc4406",
    4: "ed69744e86990b5c469f3e8b39260a5f",
}


@pytest.fixture(scope="module")
def golden_graph():
    dataset = generate_dataset(
        SynthConfig(n_users=60, n_communities=5, seed=3)
    )
    return dataset.follow_graph


@pytest.mark.parametrize("n_shards", sorted(GOLDEN_FINGERPRINTS))
def test_golden_corpus_assignment_pinned(golden_graph, n_shards):
    plan = partition_users(golden_graph, n_shards, seed=0)
    assert assignment_fingerprint(plan) == GOLDEN_FINGERPRINTS[n_shards]


def test_golden_corpus_balance_and_coverage(golden_graph):
    plan = partition_users(golden_graph, 4, seed=0)
    assert sum(plan.shard_sizes()) == golden_graph.node_count
    assert max(plan.shard_sizes()) <= plan.capacity
    assert 0.0 <= plan.boundary_fraction(golden_graph) <= 1.0
