"""Tests for repro.synth.activity and repro.synth.socialgraph."""

import numpy as np
import pytest

from repro.data.models import Tweet
from repro.synth.activity import simulate_activity, simulate_cascade
from repro.synth.config import SynthConfig
from repro.synth.interests import InterestModel
from repro.synth.socialgraph import build_follow_graph


@pytest.fixture(scope="module")
def world():
    config = SynthConfig(n_users=250, n_communities=4, seed=5)
    interests = InterestModel(config, rng=1)
    graph = build_follow_graph(config, interests.communities, rng=2)
    return config, interests, graph


class TestFollowGraph:
    def test_all_users_present(self, world):
        config, _, graph = world
        assert graph.node_count == config.n_users

    def test_out_degrees_within_bounds(self, world):
        config, _, graph = world
        for node in graph.nodes():
            assert graph.out_degree(node) <= config.max_out_degree

    def test_deterministic(self, world):
        config, interests, graph = world
        again = build_follow_graph(config, interests.communities, rng=2)
        assert sorted(again.edges()) == sorted(graph.edges())


class TestSimulateActivity:
    def test_events_within_window(self, world):
        config, interests, graph = world
        tweets, retweets = simulate_activity(config, interests, graph, rng=3)
        for tweet in tweets:
            assert 0.0 <= tweet.created_at <= config.time_span
        for retweet in retweets:
            assert retweet.time <= config.time_span

    def test_tweet_ids_unique_sequential(self, world):
        config, interests, graph = world
        tweets, _ = simulate_activity(config, interests, graph, rng=3)
        ids = [t.id for t in tweets]
        assert ids == list(range(len(ids)))

    def test_retweets_reference_tweets(self, world):
        config, interests, graph = world
        tweets, retweets = simulate_activity(config, interests, graph, rng=3)
        tweet_ids = {t.id for t in tweets}
        assert all(r.tweet in tweet_ids for r in retweets)

    def test_authors_never_retweet_own(self, world):
        config, interests, graph = world
        tweets, retweets = simulate_activity(config, interests, graph, rng=3)
        author = {t.id: t.author for t in tweets}
        assert all(author[r.tweet] != r.user for r in retweets)

    def test_no_duplicate_user_tweet_pairs(self, world):
        config, interests, graph = world
        _, retweets = simulate_activity(config, interests, graph, rng=3)
        pairs = [(r.user, r.tweet) for r in retweets]
        assert len(pairs) == len(set(pairs))

    def test_deterministic_under_seed(self, world):
        config, interests, graph = world
        a = simulate_activity(config, interests, graph, rng=3)
        b = simulate_activity(config, interests, graph, rng=3)
        assert a[0] == b[0]
        assert a[1] == b[1]


class TestSimulateCascade:
    def make_inputs(self, config):
        interests = InterestModel(config, rng=1)
        alignment = np.minimum(
            interests.interest_matrix * config.n_topics, 1.0
        )
        return interests, alignment

    def test_retweet_times_after_creation(self):
        config = SynthConfig(n_users=50, n_communities=2, seed=1,
                             base_retweet_rate=0.9, discovery_mean=0.0)
        _, alignment = self.make_inputs(config)
        followers = {0: np.arange(1, 50, dtype=np.int64)}
        tweet = Tweet(id=0, author=0, created_at=100.0, topic=0)
        rng = np.random.default_rng(0)
        actions = simulate_cascade(tweet, config, followers, alignment, rng)
        assert all(r.time > tweet.created_at for r in actions)

    def test_cascade_size_capped(self):
        config = SynthConfig(n_users=100, n_communities=2, seed=1,
                             base_retweet_rate=1.0, max_cascade_size=5,
                             discovery_mean=0.0)
        _, alignment = self.make_inputs(config)
        alignment[:] = 1.0
        followers = {u: np.arange(100, dtype=np.int64) for u in range(100)}
        tweet = Tweet(id=0, author=0, created_at=0.0, topic=0)
        rng = np.random.default_rng(0)
        actions = simulate_cascade(tweet, config, followers, alignment, rng)
        assert len(actions) <= 5

    def test_no_followers_no_discovery_no_actions(self):
        config = SynthConfig(n_users=10, n_communities=2, seed=1,
                             discovery_mean=0.0)
        _, alignment = self.make_inputs(config)
        tweet = Tweet(id=0, author=0, created_at=0.0, topic=0)
        rng = np.random.default_rng(0)
        actions = simulate_cascade(tweet, config, {}, alignment, rng)
        assert actions == []

    def test_discovery_reaches_nonfollowers(self):
        config = SynthConfig(n_users=80, n_communities=2, seed=1,
                             base_retweet_rate=0.9, discovery_mean=20.0)
        _, alignment = self.make_inputs(config)
        alignment[:] = 1.0
        pools = {0: np.arange(80, dtype=np.int64)}
        tweet = Tweet(id=0, author=0, created_at=0.0, topic=0)
        rng = np.random.default_rng(0)
        actions = simulate_cascade(
            tweet, config, {}, alignment, rng, topic_pools=pools
        )
        # No follow edges at all, yet the cascade converts via discovery.
        assert len(actions) > 0


class TestPaperShapes:
    def test_popularity_power_law(self, small_dataset):
        """Fig. 2: most tweets never retweeted, heavy tail above."""
        popularity = [small_dataset.popularity(t) for t in small_dataset.tweets]
        arr = np.asarray(popularity)
        assert (arr == 0).mean() > 0.5
        assert arr.max() >= 10

    def test_user_activity_heavy_tail(self, small_dataset):
        """Fig. 3: few users concentrate the retweet activity."""
        counts = np.asarray(
            [small_dataset.user_retweet_count(u) for u in small_dataset.users]
        )
        top_decile = np.sort(counts)[-len(counts) // 10 :].sum()
        assert top_decile > 0.3 * counts.sum()
