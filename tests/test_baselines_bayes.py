"""Tests for repro.baselines.bayes."""

import pytest

from repro.baselines.bayes import BayesRecommender
from repro.data.builders import DatasetBuilder
from repro.data.models import Retweet


def follow_world():
    """Follow chain 2 -> 1 -> 0 with a tweet authored by user 0.

    Content flows 0 -> (follower 1) -> (follower 2).
    """
    builder = DatasetBuilder().with_users(4)
    builder.follow(1, 0)
    builder.follow(2, 1)
    builder.follow(3, 0)
    builder.tweet(author=0, at=0.0, tweet_id=0)
    builder.tweet(author=0, at=1.0, tweet_id=1)
    builder.retweet(user=1, tweet=0, at=10.0)
    builder.retweet(user=2, tweet=0, at=20.0)
    train = [Retweet(1, 0, 10.0), Retweet(2, 0, 20.0)]
    return builder.build(), train


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"stop_threshold": 0.0},
            {"stop_threshold": 1.0},
            {"trust_mode": "magic"},
            {"uniform_trust": 0.0},
            {"uniform_trust": 1.5},
            {"smoothing": -1.0},
            {"max_depth": 0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BayesRecommender(**kwargs)

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            BayesRecommender().on_event(Retweet(0, 0, 0.0))


class TestUniformTrust:
    def test_followers_of_sharer_recommended(self):
        dataset, train = follow_world()
        rec = BayesRecommender(uniform_trust=0.2, stop_threshold=0.01)
        rec.fit(dataset, train)
        recs = rec.on_event(Retweet(user=0, tweet=1, time=100.0))
        users = {r.user for r in recs}
        assert 1 in users  # direct follower of the sharer
        assert 3 in users

    def test_belief_decays_with_depth(self):
        dataset, train = follow_world()
        rec = BayesRecommender(uniform_trust=0.5, stop_threshold=0.01)
        rec.fit(dataset, train)
        recs = {r.user: r.score for r in rec.on_event(Retweet(0, 1, 100.0))}
        assert recs[1] > recs[2]  # two hops from the seed

    def test_stop_threshold_limits_depth(self):
        dataset, train = follow_world()
        rec = BayesRecommender(uniform_trust=0.2, stop_threshold=0.1)
        rec.fit(dataset, train)
        recs = {r.user for r in rec.on_event(Retweet(0, 1, 100.0))}
        # 0.2 * 0.2 = 0.04 < 0.1: user 2 is never reached.
        assert 2 not in recs

    def test_max_depth_cap(self):
        dataset, train = follow_world()
        rec = BayesRecommender(uniform_trust=0.9, stop_threshold=0.01,
                               max_depth=1)
        rec.fit(dataset, train)
        recs = {r.user for r in rec.on_event(Retweet(0, 1, 100.0))}
        assert 2 not in recs

    def test_seeds_not_recommended(self):
        dataset, train = follow_world()
        rec = BayesRecommender()
        rec.fit(dataset, train)
        recs = rec.on_event(Retweet(user=0, tweet=0, time=100.0))
        # Users 1 and 2 already retweeted tweet 0 in train.
        assert all(r.user not in (0, 1, 2) for r in recs)

    def test_multiple_seeds_raise_belief(self):
        builder = DatasetBuilder().with_users(4)
        builder.follow(0, 1)
        builder.follow(0, 2)
        builder.tweet(author=3, at=0.0, tweet_id=0)
        dataset = builder.build()
        rec = BayesRecommender(uniform_trust=0.3, stop_threshold=0.01)
        rec.fit(dataset, [])
        one = {r.user: r.score for r in rec.on_event(Retweet(1, 0, 10.0))}
        both = {r.user: r.score for r in rec.on_event(Retweet(2, 0, 20.0))}
        # Noisy-OR: two sharing followees beat one.
        assert both[0] > one[0]
        # And the combination stays a probability.
        assert both[0] == pytest.approx(1 - (1 - 0.3) ** 2)

    def test_target_filter(self):
        dataset, train = follow_world()
        rec = BayesRecommender()
        rec.fit(dataset, train, target_users={3})
        recs = rec.on_event(Retweet(user=0, tweet=1, time=100.0))
        assert {r.user for r in recs} <= {3}


class TestLearnedTrust:
    def test_learned_mode_uses_coretweets(self):
        builder = DatasetBuilder().with_users(3)
        builder.follow(0, 1)
        builder.follow(2, 1)
        for tid in range(4):
            builder.tweet(author=1, at=float(tid), tweet_id=tid)
        builder.tweet(author=1, at=50.0, tweet_id=10)
        train = []
        # User 0 co-retweets everything user 1 shares; user 2 nothing.
        for tid in range(4):
            for user in (0, 1):
                builder.retweet(user=user, tweet=tid, at=10.0 + tid + user)
                train.append(Retweet(user, tid, 10.0 + tid + user))
        dataset = builder.build()
        rec = BayesRecommender(trust_mode="learned", stop_threshold=0.01)
        rec.fit(dataset, train)
        recs = {r.user: r.score for r in rec.on_event(Retweet(1, 10, 60.0))}
        assert recs[0] > recs[2]
