"""Tests for repro.core.thresholds (paper §5.4)."""

import pytest

from repro.core.thresholds import (
    DynamicThreshold,
    NoThreshold,
    StaticThreshold,
    ThresholdPolicy,
)


class TestNoThreshold:
    def test_always_zero(self):
        policy = NoThreshold()
        assert policy.threshold_for(0) == 0.0
        assert policy.threshold_for(10**6) == 0.0

    def test_satisfies_protocol(self):
        assert isinstance(NoThreshold(), ThresholdPolicy)


class TestStaticThreshold:
    def test_constant(self):
        policy = StaticThreshold(0.01)
        assert policy.threshold_for(1) == 0.01
        assert policy.threshold_for(1000) == 0.01

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            StaticThreshold(-0.5)

    def test_satisfies_protocol(self):
        assert isinstance(StaticThreshold(0.1), ThresholdPolicy)


class TestDynamicThreshold:
    def test_hill_function_formula(self):
        policy = DynamicThreshold(k=20.0, p=2.0, scale=1.0)
        # gamma(k) = 0.5 by construction of the Hill function.
        assert policy.gamma(20) == pytest.approx(0.5)
        # gamma(m) = m^p / (k^p + m^p).
        assert policy.gamma(10) == pytest.approx(100 / (400 + 100))

    def test_bounds(self):
        policy = DynamicThreshold(k=20.0, p=2.0)
        assert policy.gamma(0) == 0.0
        assert policy.gamma(1) > 0.0
        assert policy.gamma(10**9) < 1.0

    def test_monotone_in_popularity(self):
        policy = DynamicThreshold(k=20.0, p=2.0)
        values = [policy.threshold_for(m) for m in (0, 1, 5, 20, 100, 10_000)]
        assert values == sorted(values)

    def test_scale_applies(self):
        policy = DynamicThreshold(k=20.0, p=2.0, scale=0.1)
        assert policy.threshold_for(20) == pytest.approx(0.05)

    def test_fresh_tweets_near_zero(self):
        """Paper: γ close to 0 when few people shared the tweet."""
        policy = DynamicThreshold(k=20.0, p=2.0)
        assert policy.threshold_for(1) < 0.005

    def test_popular_tweets_near_scale(self):
        """Paper: γ close to 1 for popular messages."""
        policy = DynamicThreshold(k=20.0, p=2.0, scale=0.05)
        assert policy.threshold_for(10_000) == pytest.approx(0.05, rel=1e-4)

    @pytest.mark.parametrize(
        "kwargs",
        [{"k": 0.0}, {"k": -1.0}, {"p": 0.0}, {"scale": 0.0}],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DynamicThreshold(**kwargs)

    def test_satisfies_protocol(self):
        assert isinstance(DynamicThreshold(), ThresholdPolicy)

    def test_steepness(self):
        gentle = DynamicThreshold(k=20.0, p=1.0)
        steep = DynamicThreshold(k=20.0, p=4.0)
        # Below k the steeper curve is lower; above k it is higher.
        assert steep.gamma(5) < gentle.gamma(5)
        assert steep.gamma(80) > gentle.gamma(80)
