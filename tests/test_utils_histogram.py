"""Tests for repro.utils.histogram."""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.histogram import (
    FIGURE2_BINS,
    Bin,
    binned_counts,
    exact_counts,
    log_binned_counts,
    log_bucket_index,
    percentile,
)


def bucketize(samples, base=2.0) -> Counter:
    """Samples → the bucket→count mapping the obs histograms keep."""
    return Counter(log_bucket_index(s, base) for s in samples)


class TestBin:
    def test_default_labels(self):
        assert Bin(0, 0).label == "0"
        assert Bin(2, 5).label == "2-5"
        assert Bin(501).label == "501+"

    def test_custom_label(self):
        assert Bin(501, None, label="500+").label == "500+"

    def test_contains_bounded(self):
        b = Bin(2, 5)
        assert b.contains(2) and b.contains(5)
        assert not b.contains(1) and not b.contains(6)

    def test_contains_unbounded(self):
        b = Bin(10)
        assert b.contains(10) and b.contains(10**9)
        assert not b.contains(9)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Bin(5, 2)


class TestBinnedCounts:
    def test_paper_figure2_bins(self):
        values = [0, 0, 1, 3, 7, 100, 300, 1000]
        rows = dict(binned_counts(values, FIGURE2_BINS))
        assert rows["0"] == 2
        assert rows["1"] == 1
        assert rows["2-5"] == 1
        assert rows["6-50"] == 1
        assert rows["51-200"] == 1
        assert rows["201-500"] == 1
        assert rows["500+"] == 1

    def test_total_preserved_with_default_bins(self):
        values = list(range(0, 700, 7))
        rows = binned_counts(values)
        assert sum(count for _, count in rows) == len(values)

    def test_empty_input(self):
        assert all(count == 0 for _, count in binned_counts([]))


class TestLogBinnedCounts:
    def test_zero_bucket_separated(self):
        rows = log_binned_counts([0, 0, 1, 2, 3])
        assert rows[0] == ("0", 2)

    def test_bucket_boundaries_base2(self):
        rows = dict(log_binned_counts([1, 2, 3, 4, 7, 8]))
        assert rows["1"] == 1
        assert rows["2-3"] == 2
        assert rows["4-7"] == 2
        assert rows["8-15"] == 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            log_binned_counts([-1])

    def test_rejects_bad_base(self):
        with pytest.raises(ValueError):
            log_binned_counts([1], base=1.0)

    @given(st.lists(st.integers(min_value=0, max_value=10**6), max_size=200))
    def test_total_count_preserved(self, values):
        rows = log_binned_counts(values)
        assert sum(count for _, count in rows) == len(values)


class TestPercentile:
    def test_empty_histogram(self):
        assert percentile({}, 0.5) == 0.0
        assert percentile(Counter(), 0.99) == 0.0

    def test_zero_bucket_is_exact(self):
        assert percentile({None: 10}, 0.5) == 0.0
        # Median of 6 zeros + 4 larger values is still a zero.
        assert percentile({None: 6, 3: 4}, 0.5) == 0.0

    def test_single_bucket_interpolates_within_bounds(self):
        # 10 observations in [4, 8): every quantile estimate must stay
        # inside the bucket.
        buckets = {2: 10}
        for q in (0.0, 0.25, 0.5, 0.75, 0.99):
            assert 4.0 <= percentile(buckets, q) < 8.0 + 1e-9
        assert percentile(buckets, 0.0) == pytest.approx(4.0)

    def test_rank_selects_correct_bucket(self):
        # 5 obs in [1,2), 5 in [8,16): the lower-rank median (rank 4 of
        # 0..9) is the last observation of the first bucket.
        buckets = {0: 5, 3: 5}
        assert 1.0 <= percentile(buckets, 0.5) < 2.0
        assert 8.0 <= percentile(buckets, 0.99) < 16.0

    def test_matches_exact_on_known_samples(self):
        samples = [0.001] * 50 + [0.004] * 45 + [0.5] * 5
        buckets = bucketize(samples)
        for q in (0.5, 0.95, 0.99):
            exact = float(np.percentile(samples, q * 100, method="lower"))
            estimate = percentile(buckets, q)
            assert exact / 2.0 <= estimate <= exact * 2.0

    @pytest.mark.parametrize("q", [-0.1, 1.1, 50.0])
    def test_invalid_q_rejected(self, q):
        with pytest.raises(ValueError):
            percentile({0: 1}, q)

    def test_invalid_base_rejected(self):
        with pytest.raises(ValueError):
            percentile({0: 1}, 0.5, base=1.0)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            percentile({0: -1}, 0.5)

    @given(
        samples=st.lists(
            st.floats(min_value=1e-6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=300,
        ),
        q=st.floats(min_value=0.0, max_value=1.0),
        base=st.sampled_from([2.0, 10.0]),
    )
    def test_within_factor_base_of_exact(self, samples, q, base):
        # The documented error bound: the estimate lives in the same
        # log bucket as the exact method="lower" order statistic, hence
        # within a factor of ``base`` of it.
        exact = float(np.percentile(samples, q * 100, method="lower"))
        estimate = percentile(bucketize(samples, base), q, base=base)
        assert exact / base * (1 - 1e-9) <= estimate
        assert estimate <= exact * base * (1 + 1e-9)


class TestExactCounts:
    def test_sorted_value_count_pairs(self):
        assert exact_counts([3, 1, 3, 2, 3]) == [(1, 1), (2, 1), (3, 3)]

    def test_empty(self):
        assert exact_counts([]) == []
