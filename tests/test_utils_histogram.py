"""Tests for repro.utils.histogram."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.histogram import (
    FIGURE2_BINS,
    Bin,
    binned_counts,
    exact_counts,
    log_binned_counts,
)


class TestBin:
    def test_default_labels(self):
        assert Bin(0, 0).label == "0"
        assert Bin(2, 5).label == "2-5"
        assert Bin(501).label == "501+"

    def test_custom_label(self):
        assert Bin(501, None, label="500+").label == "500+"

    def test_contains_bounded(self):
        b = Bin(2, 5)
        assert b.contains(2) and b.contains(5)
        assert not b.contains(1) and not b.contains(6)

    def test_contains_unbounded(self):
        b = Bin(10)
        assert b.contains(10) and b.contains(10**9)
        assert not b.contains(9)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Bin(5, 2)


class TestBinnedCounts:
    def test_paper_figure2_bins(self):
        values = [0, 0, 1, 3, 7, 100, 300, 1000]
        rows = dict(binned_counts(values, FIGURE2_BINS))
        assert rows["0"] == 2
        assert rows["1"] == 1
        assert rows["2-5"] == 1
        assert rows["6-50"] == 1
        assert rows["51-200"] == 1
        assert rows["201-500"] == 1
        assert rows["500+"] == 1

    def test_total_preserved_with_default_bins(self):
        values = list(range(0, 700, 7))
        rows = binned_counts(values)
        assert sum(count for _, count in rows) == len(values)

    def test_empty_input(self):
        assert all(count == 0 for _, count in binned_counts([]))


class TestLogBinnedCounts:
    def test_zero_bucket_separated(self):
        rows = log_binned_counts([0, 0, 1, 2, 3])
        assert rows[0] == ("0", 2)

    def test_bucket_boundaries_base2(self):
        rows = dict(log_binned_counts([1, 2, 3, 4, 7, 8]))
        assert rows["1"] == 1
        assert rows["2-3"] == 2
        assert rows["4-7"] == 2
        assert rows["8-15"] == 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            log_binned_counts([-1])

    def test_rejects_bad_base(self):
        with pytest.raises(ValueError):
            log_binned_counts([1], base=1.0)

    @given(st.lists(st.integers(min_value=0, max_value=10**6), max_size=200))
    def test_total_count_preserved(self, values):
        rows = log_binned_counts(values)
        assert sum(count for _, count in rows) == len(values)


class TestExactCounts:
    def test_sorted_value_count_pairs(self):
        assert exact_counts([3, 1, 3, 2, 3]) == [(1, 1), (2, 1), (3, 3)]

    def test_empty(self):
        assert exact_counts([]) == []
