"""Tests for repro.core.warmcache (bounded warm-state cache)."""

import pytest

from repro.core.warmcache import DEFAULT_CAPACITY, SWEEP_INTERVAL, WarmStateCache
from repro.obs import MetricsRegistry

HOUR = 3600.0


class TestValidation:
    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            WarmStateCache(capacity=0)

    def test_bad_max_age(self):
        with pytest.raises(ValueError):
            WarmStateCache(max_age=0.0)

    def test_defaults(self):
        cache = WarmStateCache()
        assert cache.capacity == DEFAULT_CAPACITY
        assert cache.max_age is None


class TestLRU:
    def test_get_put_roundtrip(self):
        cache = WarmStateCache(capacity=4)
        cache.put(1, {"a": 0.5})
        assert cache.get(1) == {"a": 0.5}
        assert 1 in cache
        assert len(cache) == 1

    def test_miss(self):
        assert WarmStateCache().get(42) is None

    def test_capacity_evicts_least_recently_used(self):
        cache = WarmStateCache(capacity=2)
        cache.put(1, "s1")
        cache.put(2, "s2")
        cache.get(1)  # refresh 1; 2 is now the LRU entry
        cache.put(3, "s3")
        assert cache.get(2) is None
        assert cache.get(1) == "s1"
        assert cache.get(3) == "s3"
        assert len(cache) == 2

    def test_put_refreshes_position(self):
        cache = WarmStateCache(capacity=2)
        cache.put(1, "s1")
        cache.put(2, "s2")
        cache.put(1, "s1b")  # re-put refreshes 1; 2 becomes LRU
        cache.put(3, "s3")
        assert cache.get(2) is None
        assert cache.get(1) == "s1b"

    def test_pop_and_clear(self):
        cache = WarmStateCache(capacity=4)
        cache.put(1, "s1")
        cache.put(2, "s2")
        cache.pop(1)
        assert cache.get(1) is None
        cache.clear()
        assert len(cache) == 0
        assert cache.get(2) is None


class TestAgeEviction:
    """The 72h relevance horizon (paper §3.1.2) applied to warm state."""

    def test_get_evicts_past_horizon(self):
        cache = WarmStateCache(max_age=72 * HOUR)
        cache.put(1, "s1", created_at=0.0)
        assert cache.get(1, now=72 * HOUR) == "s1"  # exactly at horizon: kept
        assert cache.get(1, now=72 * HOUR + 1.0) is None
        assert 1 not in cache

    def test_put_of_expired_state_drops_existing(self):
        cache = WarmStateCache(max_age=HOUR)
        cache.put(1, "old", created_at=0.0, now=0.0)
        cache.put(1, "new", created_at=0.0, now=2 * HOUR)
        assert 1 not in cache

    def test_unknown_created_at_never_expires(self):
        cache = WarmStateCache(max_age=HOUR)
        cache.put(1, "s1", created_at=None)
        assert cache.get(1, now=10 * HOUR) == "s1"

    def test_sweep(self):
        cache = WarmStateCache(max_age=HOUR)
        cache.put(1, "s1", created_at=0.0)
        cache.put(2, "s2", created_at=3 * HOUR)
        assert cache.sweep(now=2.5 * HOUR) == 1
        assert 1 not in cache
        assert 2 in cache

    def test_sweep_noop_without_max_age(self):
        cache = WarmStateCache()
        cache.put(1, "s1", created_at=0.0)
        assert cache.sweep(now=1e12) == 0
        assert 1 in cache

    def test_put_sweeps_periodically(self):
        cache = WarmStateCache(capacity=10_000, max_age=HOUR)
        cache.put(999, "dead", created_at=0.0)
        for i in range(SWEEP_INTERVAL):
            cache.put(i, "live", created_at=9 * HOUR, now=9 * HOUR)
        assert 999 not in cache


class TestMetrics:
    def test_counters_and_gauge(self):
        registry = MetricsRegistry()
        cache = WarmStateCache(capacity=2, max_age=HOUR, metrics=registry)
        cache.get(1)  # miss
        cache.put(1, "s1", created_at=0.0)
        cache.get(1, now=0.0)  # hit
        cache.put(2, "s2")
        cache.put(3, "s3")  # LRU-evicts 1
        cache.get(2, now=9 * HOUR)  # no created_at: never expires -> hit
        cache.put(4, "s4", created_at=0.0)  # at capacity: LRU-evicts 3
        cache.get(4, now=9 * HOUR)  # expired eviction + miss
        cache.pop(2)  # invalidated
        counters = registry.snapshot()["counters"]
        assert counters["warmcache.misses"] == 2
        assert counters["warmcache.hits"] == 2
        assert counters["warmcache.evictions[lru]"] == 2
        assert counters["warmcache.evictions[expired]"] == 1
        assert counters["warmcache.evictions[invalidated]"] == 1
        assert registry.snapshot()["gauges"]["warmcache.size"] == len(cache)

    def test_clear_counts_invalidations(self):
        registry = MetricsRegistry()
        cache = WarmStateCache(metrics=registry)
        cache.put(1, "s1")
        cache.put(2, "s2")
        cache.clear()
        counters = registry.snapshot()["counters"]
        assert counters["warmcache.evictions[invalidated]"] == 2
