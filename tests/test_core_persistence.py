"""Tests for repro.core.persistence (SimGraph snapshots)."""

import json

import pytest

from repro.core.persistence import load_simgraph, save_simgraph
from repro.core.simgraph import SimGraph
from repro.exceptions import DatasetError
from repro.graph.digraph import DiGraph


class TestRoundTrip:
    def test_paper_example_round_trip(self, paper_example, tmp_path):
        path = save_simgraph(paper_example, tmp_path / "graph.jsonl")
        loaded = load_simgraph(path)
        assert loaded.tau == paper_example.tau
        assert sorted(loaded.graph.edges()) == sorted(
            paper_example.graph.edges()
        )

    def test_isolated_nodes_preserved(self, tmp_path):
        graph = DiGraph()
        graph.add_edge(1, 2, weight=0.5)
        graph.add_node(99)
        simgraph = SimGraph(graph, tau=0.01)
        loaded = load_simgraph(save_simgraph(simgraph, tmp_path / "g.jsonl"))
        assert 99 in loaded
        assert loaded.node_count == 3

    def test_empty_graph(self, tmp_path):
        simgraph = SimGraph(DiGraph(), tau=0.1)
        loaded = load_simgraph(save_simgraph(simgraph, tmp_path / "g.jsonl"))
        assert loaded.node_count == 0
        assert loaded.tau == 0.1

    def test_propagation_identical_after_reload(self, paper_example, tmp_path):
        from repro.core.propagation import PropagationEngine

        loaded = load_simgraph(
            save_simgraph(paper_example, tmp_path / "g.jsonl")
        )
        original = PropagationEngine(paper_example).propagate([3])
        reloaded = PropagationEngine(loaded).propagate([3])
        assert original.probabilities == pytest.approx(reloaded.probabilities)

    def test_creates_parent_directories(self, paper_example, tmp_path):
        path = save_simgraph(paper_example, tmp_path / "deep" / "g.jsonl")
        assert path.exists()


class TestErrors:
    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            load_simgraph(tmp_path / "nope.jsonl")

    def test_invalid_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(DatasetError, match="invalid header"):
            load_simgraph(path)

    def test_wrong_format_rejected(self, paper_example, tmp_path):
        path = save_simgraph(paper_example, tmp_path / "g.jsonl")
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["format"] = 999
        lines[0] = json.dumps(header)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(DatasetError, match="unsupported format"):
            load_simgraph(path)

    def test_malformed_edge_rejected(self, paper_example, tmp_path):
        path = save_simgraph(paper_example, tmp_path / "g.jsonl")
        with open(path, "a", encoding="utf-8") as f:
            f.write("[1, 2]\n")  # missing weight
        with pytest.raises(DatasetError, match="malformed edge"):
            load_simgraph(path)

    def test_count_mismatch_rejected(self, paper_example, tmp_path):
        path = save_simgraph(paper_example, tmp_path / "g.jsonl")
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["edges"] += 1
        lines[0] = json.dumps(header)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(DatasetError, match="disagree"):
            load_simgraph(path)

    def test_non_snapshot_json_rejected(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text(json.dumps({"something": "else"}) + "\n")
        with pytest.raises(DatasetError, match="not a SimGraph snapshot"):
            load_simgraph(path)
