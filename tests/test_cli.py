"""Tests for repro.cli."""

import json

import pytest

from repro.cli import build_parser, main
from repro.data import load_dataset


@pytest.fixture(scope="module")
def dataset_dir(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "ds"
    code = main(
        ["generate", "--users", "300", "--seed", "5", "--out", str(path)]
    )
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--users", "50", "--out", "x"]
        )
        assert args.users == 50
        assert args.command == "generate"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])


class TestGenerate:
    def test_dataset_written(self, dataset_dir):
        dataset = load_dataset(dataset_dir)
        assert dataset.user_count == 300

    def test_deterministic_seed(self, tmp_path):
        main(["generate", "--users", "100", "--seed", "9",
              "--out", str(tmp_path / "a")])
        main(["generate", "--users", "100", "--seed", "9",
              "--out", str(tmp_path / "b")])
        a = load_dataset(tmp_path / "a")
        b = load_dataset(tmp_path / "b")
        assert a.retweets() == b.retweets()


class TestAnalyze:
    def test_prints_table1(self, dataset_dir, capsys):
        code = main(["analyze", str(dataset_dir), "--path-sample", "20"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Table 1" in out
        assert "# nodes" in out
        assert "Lifetime" in out


class TestBuildSimgraph:
    def test_prints_table4(self, dataset_dir, capsys):
        code = main(["build-simgraph", str(dataset_dir), "--tau", "0.001"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Nb of nodes" in out

    def test_vectorized_backend_runs(self, dataset_dir, capsys):
        code = main([
            "build-simgraph", str(dataset_dir), "--tau", "0.001",
            "--backend", "vectorized", "--workers", "1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "backend=vectorized" in out
        assert "Nb of nodes" in out

    def test_backend_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["build-simgraph", "ds", "--backend", "gpu"]
            )


class TestEvaluate:
    def test_single_method_runs(self, dataset_dir, capsys):
        code = main([
            "evaluate", str(dataset_dir),
            "--methods", "cf", "--k", "5,10", "--per-stratum", "30",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "CF" in out
        assert "hits" in out

    def test_unknown_method_rejected(self, dataset_dir, capsys):
        code = main([
            "evaluate", str(dataset_dir), "--methods", "nope",
        ])
        assert code == 2
        assert "unknown methods" in capsys.readouterr().err

    def test_backend_flag_accepted(self, dataset_dir, capsys):
        code = main([
            "evaluate", str(dataset_dir), "--methods", "simgraph",
            "--backend", "vectorized", "--k", "5", "--per-stratum", "20",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "SimGraph" in out


class TestMaintain:
    def test_delta_maintenance_runs(self, dataset_dir, capsys):
        code = main([
            "maintain", str(dataset_dir), "--rebuild-strategy", "delta",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "Maintenance (delta" in out
        assert "speedup vs full build" in out

    def test_metrics_snapshot_written(self, dataset_dir, tmp_path, capsys):
        path = tmp_path / "maintain.json"
        code = main([
            "maintain", str(dataset_dir), "--metrics-json", str(path),
        ])
        assert code == 0
        assert "maintenance.dirty_users" in capsys.readouterr().out
        snapshot = json.loads(path.read_text())
        assert snapshot["counters"]["maintenance.dirty_users"] > 0

    def test_all_strategies_accepted(self, dataset_dir):
        code = main([
            "maintain", str(dataset_dir),
            "--rebuild-strategy", "crossfold scoped",
        ])
        assert code == 0

    def test_bad_window_rejected(self, dataset_dir, capsys):
        code = main(["maintain", str(dataset_dir), "--window", "oops"])
        assert code == 2
        assert "bad --window" in capsys.readouterr().err

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["maintain", "ds", "--rebuild-strategy", "bogus"]
            )


class TestImport:
    def test_import_builds_dataset(self, tmp_path, capsys):
        edges = tmp_path / "edges.txt"
        edges.write_text("1 2\n2 3\n")
        rts = tmp_path / "rts.csv"
        rts.write_text("user,tweet,timestamp\n1,10,5.0\n2,10,6.0\n")
        code = main([
            "import", "--edges", str(edges), "--retweets", str(rts),
            "--out", str(tmp_path / "ds"),
        ])
        assert code == 0
        assert "imported" in capsys.readouterr().out
        dataset = load_dataset(tmp_path / "ds")
        assert dataset.popularity(10) == 2
        assert dataset.follow_graph.edge_count == 2


class TestShards:
    @pytest.fixture(scope="class")
    def small_dir(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-shard") / "ds"
        code = main([
            "generate", "--users", "70", "--seed", "3",
            "--communities", "4", "--out", str(path),
        ])
        assert code == 0
        return path

    def test_maintain_shards_matches_single_process(self, small_dir, capsys):
        code = main([
            "maintain", str(small_dir), "--rebuild-strategy", "delta",
            "--shards", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "Sharded maintenance (3 workers)" in out
        assert "yes" in out.split("matches single-process")[1]

    def test_maintain_shards_rejects_unsupported_strategy(
        self, small_dir, capsys
    ):
        code = main([
            "maintain", str(small_dir), "--rebuild-strategy", "crossfold",
            "--shards", "2",
        ])
        assert code == 2
        assert "supports" in capsys.readouterr().err

    def test_evaluate_shards_adds_service_row(self, small_dir, capsys):
        code = main([
            "evaluate", str(small_dir), "--methods", "simgraph",
            "--k", "10", "--shards", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "service-shard2" in out

    def test_evaluate_negative_shards_rejected(self, small_dir, capsys):
        code = main([
            "evaluate", str(small_dir), "--methods", "simgraph",
            "--k", "10", "--shards", "-1",
        ])
        assert code == 2
        assert "positive" in capsys.readouterr().err


class TestServe:
    @pytest.fixture(scope="class")
    def serve_dir(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-serve") / "ds"
        code = main([
            "generate", "--users", "80", "--seed", "4",
            "--communities", "4", "--out", str(path),
        ])
        assert code == 0
        return path

    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve", "data"])
        assert args.split == 0.9
        assert args.max_batch == 32
        assert args.admit_rate is None
        assert args.shards == 0
        assert args.prop_backend == "csr"

    def test_bad_split_rejected(self, serve_dir, capsys):
        code = main(["serve", str(serve_dir), "--split", "1.5"])
        assert code == 2
        assert "--split" in capsys.readouterr().err

    def test_replay_single_process(self, serve_dir, capsys):
        code = main([
            "serve", str(serve_dir), "--split", "0.9", "--limit", "40",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "Serve replay" in out
        assert "status: ok" in out
        assert "p50/p95/p99" in out

    def test_replay_sharded(self, serve_dir, capsys):
        code = main([
            "serve", str(serve_dir), "--split", "0.95", "--limit", "20",
            "--shards", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "sharded x2" in out
        assert "status: ok" in out

    def test_metrics_json_written(self, serve_dir, tmp_path, capsys):
        out_path = tmp_path / "serve_metrics.json"
        code = main([
            "serve", str(serve_dir), "--split", "0.95", "--limit", "20",
            "--metrics-json", str(out_path),
        ])
        assert code == 0
        capsys.readouterr()
        snapshot = json.loads(out_path.read_text())
        assert snapshot["counters"]["serve.requests"] >= 20


class TestLoadgen:
    BASE = [
        "loadgen", "--users", "40", "--live-tweets", "10",
        "--events", "30", "--rate", "2000", "--no-scheduler",
    ]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["loadgen"])
        assert args.rate == 500.0
        assert args.profile == "steady"
        assert args.events == 1000
        assert not args.calibrate

    def test_steady_run_writes_report(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        code = main(self.BASE + ["--out", str(out_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "Load generation (30 events)" in out
        payload = json.loads(out_path.read_text())
        assert payload["profile"] == "steady"
        report = payload["report"]
        assert report["responses"] == 30
        assert report["dropped"] == 0
        assert "p99" in report["latency"]["ok"]

    def test_burst_profile_runs(self, capsys):
        code = main(self.BASE + [
            "--profile", "burst", "--burst-every", "0.02",
            "--burst-length", "0.005",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "burst" in out.split("offered")[0]  # the profile row

    def test_calibrated_run_reports_admission(self, capsys):
        code = main(self.BASE + ["--calibrate", "--slo", "0.5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "calibrated admit rate" in out
        assert "degrade/shed depth" in out
