"""Tests for repro.analysis.convergence (§5.3 empirical study)."""

import pytest

from repro.analysis.convergence import norms_by_tau, study_convergence
from repro.core.profiles import RetweetProfiles
from repro.core.simgraph import SimGraphBuilder
from repro.data import temporal_split


@pytest.fixture(scope="module")
def world(small_dataset):
    split = temporal_split(small_dataset)
    profiles = RetweetProfiles(split.train)
    simgraph = SimGraphBuilder(tau=0.001).build(
        small_dataset.follow_graph, profiles
    )
    return small_dataset, split, profiles, simgraph


class TestStudyConvergence:
    def test_norm_below_one(self, world):
        _, split, _, simgraph = world
        study = study_convergence(simgraph, split.train, max_tweets=20)
        # §5.3: diagonal dominance means the norm is strictly below 1.
        assert 0.0 < study.iteration_norm < 1.0

    def test_spectral_radius_bounded_by_norm(self, world):
        _, split, _, simgraph = world
        study = study_convergence(simgraph, split.train, max_tweets=20)
        assert study.spectral_radius <= study.iteration_norm + 1e-9

    def test_iteration_counts_collected(self, world):
        _, split, _, simgraph = world
        study = study_convergence(simgraph, split.train, max_tweets=15)
        assert len(study.iterations) == 15
        assert len(study.updates) == 15
        assert all(i >= 1 for i in study.iterations)
        assert study.max_iterations >= study.mean_iterations

    def test_fast_convergence_on_sparse_graph(self, world):
        _, split, _, simgraph = world
        study = study_convergence(simgraph, split.train, max_tweets=20)
        # The contraction factor is far from 1, so fixpoints come fast.
        assert study.mean_iterations < 30

    def test_rows_structure(self, world):
        _, split, _, simgraph = world
        study = study_convergence(simgraph, split.train, max_tweets=5)
        labels = [label for label, _ in study.rows()]
        assert "iteration-matrix norm ||A||" in labels
        assert "mean iterations" in labels

    def test_empty_stream(self, world):
        _, _, _, simgraph = world
        study = study_convergence(simgraph, [], max_tweets=5)
        assert study.iterations == []
        assert study.mean_iterations == 0.0
        assert study.max_iterations == 0


class TestNormsByTau:
    def test_norms_stay_below_one(self, world):
        """§5.3: every SimGraph system contracts, at any tau — the
        row-mean normalization keeps the norm strictly below 1 even
        though pruning weak edges can raise it."""
        dataset, _, profiles, _ = world
        rows = norms_by_tau(
            dataset.follow_graph, profiles, taus=[0.001, 0.01, 0.05]
        )
        for _, norm, radius in rows:
            assert 0.0 <= radius <= norm + 1e-9
            assert norm < 1.0

    def test_row_shape(self, world):
        dataset, _, profiles, _ = world
        rows = norms_by_tau(dataset.follow_graph, profiles, taus=[0.01])
        tau, norm, radius = rows[0]
        assert tau == 0.01
        assert 0.0 <= radius <= norm + 1e-9 <= 1.0 + 1e-9
