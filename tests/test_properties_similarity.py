"""Property-based lockdown of Def. 3.1 across both backends.

Hypothesis generates arbitrary retweet corpora and checks the algebraic
contract of the similarity measure — symmetry, bounds, zero diagonal,
empty-profile behaviour — plus the agreement of every batched path
(``similarities_from``, ``pairwise_similarities``, the vectorized
:class:`SimilarityMatrix`) with the pairwise reference ``similarity``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.profiles import RetweetProfiles
from repro.core.similarity import (
    pairwise_similarities,
    similarities_from,
    similarity,
)
from repro.core.simmatrix import SimilarityMatrix

SIM_TOLERANCE = 1e-12


@st.composite
def retweet_corpus(draw):
    n_users = draw(st.integers(min_value=2, max_value=9))
    n_tweets = draw(st.integers(min_value=1, max_value=12))
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(0, n_users - 1), st.integers(0, n_tweets - 1)
            ),
            max_size=70,
        )
    )
    profiles = RetweetProfiles()
    for user, tweet in pairs:
        profiles.add(user, tweet)
    return profiles


@settings(max_examples=80)
@given(retweet_corpus())
def test_symmetry(profiles):
    """sim(u, v) == sim(v, u) for arbitrary profiles."""
    users = sorted(profiles.users())
    for u in users:
        for v in users:
            assert similarity(profiles, u, v) == pytest.approx(
                similarity(profiles, v, u), abs=SIM_TOLERANCE
            )


@settings(max_examples=80)
@given(retweet_corpus())
def test_bounds_and_zero_diagonal(profiles):
    """0 <= sim < 1 always, and sim(u, u) == 0."""
    users = sorted(profiles.users())
    for u in users:
        assert similarity(profiles, u, u) == 0.0
        for v in users:
            assert 0.0 <= similarity(profiles, u, v) < 1.0


@settings(max_examples=40)
@given(retweet_corpus(), st.integers(min_value=100, max_value=110))
def test_empty_profile_is_zero_everywhere(profiles, stranger):
    """A user with no retweets has zero similarity to everyone."""
    assert similarities_from(profiles, stranger) == {}
    for u in sorted(profiles.users()):
        assert similarity(profiles, u, stranger) == 0.0
        assert similarity(profiles, stranger, u) == 0.0
        assert stranger not in similarities_from(profiles, u)


@settings(max_examples=60)
@given(retweet_corpus())
def test_similarities_from_agrees_with_pairwise_similarity(profiles):
    """The inverted-index scan returns exactly the non-zero sim(u, v)."""
    users = sorted(profiles.users())
    for u in users:
        scores = similarities_from(profiles, u)
        for v in users:
            direct = similarity(profiles, u, v)
            if direct > 0:
                assert scores[v] == pytest.approx(direct, abs=SIM_TOLERANCE)
            else:
                assert v not in scores


@settings(max_examples=60)
@given(retweet_corpus())
def test_vectorized_backend_agrees_with_reference(profiles):
    """SimilarityMatrix reproduces similarities_from on arbitrary profiles."""
    matrix = SimilarityMatrix(profiles)
    for u in sorted(profiles.users()):
        reference = similarities_from(profiles, u)
        vectorized = matrix.similarities_from(u)
        assert set(reference) == set(vectorized)
        for v, score in reference.items():
            assert vectorized[v] == pytest.approx(score, abs=SIM_TOLERANCE)


@settings(max_examples=40)
@given(retweet_corpus())
def test_pairwise_contract_and_agreement(profiles):
    """pairwise_similarities: keys u < v, values equal similarity(u, v),
    and every non-zero pair is present exactly once."""
    scores = pairwise_similarities(profiles)
    users = sorted(profiles.users())
    for (u, v), score in scores.items():
        assert u < v
        assert score == pytest.approx(
            similarity(profiles, u, v), abs=SIM_TOLERANCE
        )
    for i, u in enumerate(users):
        for v in users[i + 1 :]:
            if similarity(profiles, u, v) > 0:
                assert (u, v) in scores
