"""Property suite: top-k pruning never produces a false prune.

The kernel engine's :meth:`propagate_topk` may skip ("prune") sink
users whose static upper bound provably cannot reach the running top-k
cutoff.  On arbitrary random graphs, seed sets, ``k`` and score floors,
this suite pins the claims that make pruning *exact* rather than
approximate:

* the ranked top-k list equals the exact top-k computed from the
  reference engine's full fixpoint (same scores, same
  score-desc/user-asc order);
* every pruned user's upper bound is **strictly below** the exact
  cutoff (the k-th retained score, or the ``min_score`` floor when
  fewer than k candidates survive it) — so no pruned user could have
  entered the list;
* every retained (non-pruned) probability is bit-identical to the
  reference — pruning never perturbs kept scores;
* with ``min_score == 0`` and fewer than k non-seed candidates, nothing
  is pruned at all (the running cutoff never activates).

Runs on the interpreted kernels when numba is absent; CI's numba leg
exercises the identical jit-compiled source.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import (
    DynamicThreshold,
    NoThreshold,
    NumbaPropagationEngine,
    PropagationEngine,
    StaticThreshold,
)
from repro.core.simgraph import SimGraph
from repro.graph.digraph import DiGraph

POLICIES = {
    "none": lambda: NoThreshold(),
    "beta": lambda: StaticThreshold(0.02),
    "gamma": lambda: DynamicThreshold(),
}


@st.composite
def pruning_case(draw):
    n = draw(st.integers(min_value=2, max_value=14))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.floats(min_value=0.01, max_value=0.99),
            ).filter(lambda e: e[0] != e[1]),
            max_size=50,
        )
    )
    graph = DiGraph()
    graph.add_nodes(range(n))
    for u, v, w in edges:
        graph.add_edge(u, v, weight=w)
    seeds = draw(st.sets(st.integers(0, n - 1), min_size=1, max_size=n))
    k = draw(st.integers(min_value=1, max_value=6))
    min_score = draw(st.sampled_from([0.0, 1e-4, 0.02, 0.2]))
    policy = draw(st.sampled_from(sorted(POLICIES)))
    return SimGraph(graph, tau=0.0), sorted(seeds), k, min_score, policy


def exact_topk(simgraph, seeds, min_score, policy):
    """The ground-truth candidate list from the reference engine."""
    reference = PropagationEngine(simgraph, threshold=POLICIES[policy]())
    result = reference.propagate(seeds)
    seed_set = set(seeds)
    return sorted(
        (
            (user, score)
            for user, score in result.probabilities.items()
            if user not in seed_set and score >= min_score
        ),
        key=lambda item: (-item[1], item[0]),
    ), result


@settings(max_examples=120, deadline=None)
@given(pruning_case())
def test_pruning_is_exact(case):
    simgraph, seeds, k, min_score, policy = case
    engine = NumbaPropagationEngine(simgraph, threshold=POLICIES[policy]())
    ranked, result = engine.propagate_topk(seeds, k, min_score=min_score)
    pruned = engine.take_pruned()
    exact, reference = exact_topk(simgraph, seeds, min_score, policy)

    # The ranked list is the exact top-k, order and scores included.
    assert ranked == exact[:k]

    # Retained scores are bit-identical to the reference fixpoint.
    pruned_set = set(pruned)
    for user, p in reference.probabilities.items():
        if user not in pruned_set:
            assert result.probabilities.get(user, 0.0) == p

    # No false prunes: every pruned user's upper bound sits strictly
    # below the exact cutoff, so it could never have entered the top-k.
    if pruned:
        if len(exact) >= k:
            cutoff = exact[k - 1][1]
        else:
            # The running cutoff can only have activated via the
            # min_score floor when fewer than k candidates survive it.
            assert min_score > 0.0
            cutoff = min_score
        ubound = engine.upper_bounds()
        index = engine.csr.index
        for user in pruned:
            assert ubound[index[user]] < cutoff
            assert all(u != user for u, _ in ranked)

    # Without a floor and with fewer than k candidates the cutoff never
    # activates, so nothing may be pruned.
    if min_score == 0.0 and len(exact) < k:
        assert pruned == []


@settings(max_examples=40, deadline=None)
@given(pruning_case())
def test_pruned_users_are_sinks(case):
    """Only sink users (read by nobody) are ever pruned: skipping a
    non-sink would corrupt downstream sums."""
    simgraph, seeds, k, min_score, policy = case
    engine = NumbaPropagationEngine(simgraph, threshold=POLICIES[policy]())
    engine.propagate_topk(seeds, k, min_score=min_score)
    csr = engine.csr
    for user in engine.take_pruned():
        idx = csr.index[user]
        assert csr.out_indptr[idx + 1] == csr.out_indptr[idx]


@settings(max_examples=40, deadline=None)
@given(pruning_case())
def test_warm_state_values_stay_below_fixpoint(case):
    """The warm state saved from a pruned run is stale-*low*, never
    stale-high: every stored value is at most the exact fixpoint value
    (plus the fixpoint tolerance), which is what makes it a sound
    monotone resume point for a later ``propagate_topk``."""
    simgraph, seeds, k, min_score, policy = case
    engine = NumbaPropagationEngine(simgraph, threshold=NoThreshold())
    _, result = engine.propagate_topk(seeds, k, min_score=min_score)
    exact = PropagationEngine(simgraph, threshold=NoThreshold()).propagate(
        seeds
    )
    for user, p in result.probabilities.items():
        assert p <= exact.probabilities.get(user, 0.0) + 1e-10


@settings(max_examples=40, deadline=None)
@given(pruning_case())
def test_arbitrary_dict_warm_start_disables_pruning(case):
    """A warm start from an arbitrary mapping carries no monotonicity
    guarantee, so ``propagate_topk`` must not prune — and must then
    agree exactly with the reference resumed from the same mapping."""
    simgraph, seeds, k, min_score, policy = case
    users = sorted(simgraph.users())
    initial = {users[0]: 0.9} if users else {1: 0.9}
    engine = NumbaPropagationEngine(simgraph, threshold=POLICIES[policy]())
    ranked, result = engine.propagate_topk(
        seeds, k, initial=initial, min_score=min_score
    )
    assert engine.take_pruned() == []
    reference = PropagationEngine(
        simgraph, threshold=POLICIES[policy]()
    ).propagate(seeds, initial=initial)
    assert result.probabilities == reference.probabilities
    seed_set = set(seeds)
    expected = sorted(
        (
            (user, score)
            for user, score in reference.probabilities.items()
            if user not in seed_set and score >= min_score
        ),
        key=lambda item: (-item[1], item[0]),
    )
    assert ranked == expected[:k]
