"""Shard-vs-single differential suite: sharded output is bit-identical.

Every leg drives the same synthetic corpus through a single-process
:class:`RecommendationService` and a :class:`ShardedRecommendationService`
with the *identical* call sequence, then requires exact equality — not
approximate — of:

* the per-event delivered notification lists (scores, users, order);
* the aggregate service stats;
* the assembled SimGraph (edges with weights, and node sets).

The matrix covers shard counts {1, 2, 4, 8}, both supported rebuild
strategies, scheduler on/off, frequent delta maintenance, snapshot
warm-boot mid-stream, and a real fork-multiprocessing leg (the rest run
workers in-process — same protocol, no IPC — to keep the matrix fast).
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.core.persistence import save_simgraph
from repro.service import RecommendationService, ServiceConfig
from repro.shard import ShardedRecommendationService
from repro.shard.replay import drive_service, ingest_graph
from repro.synth import SynthConfig, generate_dataset

DAY = 86400.0


@pytest.fixture(scope="module")
def corpus():
    dataset = generate_dataset(
        SynthConfig(n_users=90, n_communities=6, time_span=8 * DAY, seed=11)
    )
    return dataset, dataset.retweets()


def _config(**overrides) -> ServiceConfig:
    base = dict(rebuild_strategy="delta", rebuild_interval=3 * DAY)
    base.update(overrides)
    return ServiceConfig(**base)


def _run_single(config, dataset, retweets):
    service = RecommendationService(config)
    ingest_graph(service, dataset)
    events = []
    delivered = drive_service(
        service, dataset, retweets,
        on_delivered=lambda e, recs: events.append((e, tuple(recs))),
    )
    return delivered, events, service


def _run_sharded(n_shards, config, dataset, retweets, start_method="inprocess"):
    service = ShardedRecommendationService(
        n_shards, config=config, start_method=start_method
    )
    ingest_graph(service, dataset)
    events = []
    delivered = drive_service(
        service, dataset, retweets,
        on_delivered=lambda e, recs: events.append((e, tuple(recs))),
    )
    return delivered, events, service


def _edge_map(simgraph):
    return {(u, v): w for u, v, w in simgraph.graph.edges()}


def _assert_identical(single, sharded):
    s_del, s_ev, s_svc = single
    d_del, d_ev, d_svc = sharded
    assert d_del == s_del
    assert d_ev == s_ev
    assert d_svc.stats == s_svc.stats
    exported = d_svc.export_simgraph()
    assert _edge_map(exported) == _edge_map(s_svc.simgraph)
    assert set(exported.graph.nodes()) == set(s_svc.simgraph.graph.nodes())
    d_svc.close()


@pytest.mark.parametrize("n_shards", [1, 2, 4, 8])
def test_delta_strategy_matrix(corpus, n_shards):
    dataset, retweets = corpus
    config = _config()
    single = _run_single(config, dataset, retweets)
    sharded = _run_sharded(n_shards, config, dataset, retweets)
    _assert_identical(single, sharded)


def test_from_scratch_strategy(corpus):
    dataset, retweets = corpus
    config = _config(rebuild_strategy="from scratch")
    single = _run_single(config, dataset, retweets)
    sharded = _run_sharded(4, config, dataset, retweets)
    _assert_identical(single, sharded)


def test_without_scheduler(corpus):
    dataset, retweets = corpus
    config = _config(use_scheduler=False)
    single = _run_single(config, dataset, retweets)
    sharded = _run_sharded(2, config, dataset, retweets)
    _assert_identical(single, sharded)


def test_frequent_delta_rebuilds(corpus):
    """Short maintenance interval: many delta rounds, cross-shard patches."""
    dataset, retweets = corpus
    config = _config(rebuild_interval=DAY)
    single = _run_single(config, dataset, retweets)
    sharded = _run_sharded(4, config, dataset, retweets)
    assert single[2].stats.rebuilds >= 4  # the leg actually exercises delta
    _assert_identical(single, sharded)


def test_snapshot_warm_boot(corpus, tmp_path):
    """Both services adopt the same mmap snapshot mid-stream; still exact."""
    dataset, retweets = corpus
    half = len(retweets) // 2
    first, second = retweets[:half], retweets[half:]
    config = _config()

    single = RecommendationService(config)
    sharded = ShardedRecommendationService(
        4, config=config, start_method="inprocess"
    )
    ingest_graph(single, dataset)
    ingest_graph(sharded, dataset)
    assert drive_service(single, dataset, first, flush=False) == drive_service(
        sharded, dataset, first, flush=False
    )

    path = tmp_path / "warmboot.simgraph"
    save_simgraph(single.simgraph, path, format=2)
    single.load_snapshot(path, mmap=True)
    sharded.load_snapshot(path, mmap=True)
    assert sharded.stats == single.stats

    s_del = drive_service(single, dataset, second)
    d_del = drive_service(sharded, dataset, second)
    assert d_del == s_del
    assert sharded.stats == single.stats
    assert _edge_map(sharded.export_simgraph()) == _edge_map(single.simgraph)
    sharded.close()


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)
def test_fork_multiprocessing_leg():
    """The real IPC path (pipes + processes) is exact too."""
    dataset = generate_dataset(
        SynthConfig(n_users=40, n_communities=4, time_span=4 * DAY, seed=5)
    )
    retweets = dataset.retweets()
    config = _config()
    single = _run_single(config, dataset, retweets)
    sharded = _run_sharded(3, config, dataset, retweets, start_method="fork")
    _assert_identical(single, sharded)


def test_numba_kernel_workers_identical(corpus, monkeypatch):
    """Workers with kernel-compiled row sums stay bit-identical.

    ``REPRO_PROP_KERNEL=python`` guarantees the workers genuinely run
    the kernels (interpreted here; CI's numba leg compiles them) rather
    than silently falling back to the dict path when numba is absent.
    """
    monkeypatch.setenv("REPRO_PROP_KERNEL", "python")
    dataset, retweets = corpus
    single = _run_single(
        _config(prop_backend="reference"), dataset, retweets
    )
    for prop_backend in ("numba", "auto"):
        sharded = _run_sharded(
            4, _config(prop_backend=prop_backend), dataset, retweets
        )
        assert sharded[2]._worker_prop_backend == "numba"
        _assert_identical(single, sharded)


def test_sharded_metrics_report_routing(corpus):
    """shard.* observability counters are populated during a replay."""
    dataset, retweets = corpus
    _, _, service = _run_sharded(4, _config(), dataset, retweets)
    snapshot = service.metrics_snapshot(deterministic=True)
    counters = snapshot["counters"]
    assert counters["shard.events_routed"] == service.stats.propagations_run
    assert "shard.solo_grants" in counters
    gauges = snapshot["gauges"]
    assert 0.0 <= gauges["shard.boundary_edge_fraction"] <= 1.0
    assert gauges["shard.workers"] == 4
    service.close()
