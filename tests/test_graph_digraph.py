"""Tests for repro.graph.digraph."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import GraphError
from repro.graph.digraph import DiGraph


def build_triangle() -> DiGraph:
    g = DiGraph()
    g.add_edge(0, 1, weight=0.5)
    g.add_edge(1, 2, weight=0.7)
    g.add_edge(2, 0, weight=0.9)
    return g


class TestConstruction:
    def test_add_node_idempotent(self):
        g = DiGraph()
        g.add_node(1)
        g.add_node(1)
        assert g.node_count == 1

    def test_add_edge_creates_endpoints(self):
        g = DiGraph()
        g.add_edge(1, 2)
        assert 1 in g and 2 in g
        assert g.edge_count == 1

    def test_readd_edge_overwrites_weight(self):
        g = DiGraph()
        g.add_edge(1, 2, weight=0.1)
        g.add_edge(1, 2, weight=0.9)
        assert g.edge_count == 1
        assert g.weight(1, 2) == 0.9

    def test_self_loop_rejected(self):
        g = DiGraph()
        with pytest.raises(GraphError):
            g.add_edge(1, 1)

    def test_add_nodes_bulk(self):
        g = DiGraph()
        g.add_nodes(range(5))
        assert g.node_count == 5


class TestRemoval:
    def test_remove_edge(self):
        g = build_triangle()
        g.remove_edge(0, 1)
        assert not g.has_edge(0, 1)
        assert g.edge_count == 2
        assert 0 not in set(g.predecessors(1))

    def test_remove_missing_edge_rejected(self):
        g = DiGraph()
        g.add_node(1)
        g.add_node(2)
        with pytest.raises(GraphError):
            g.remove_edge(1, 2)

    def test_remove_node_cleans_incident_edges(self):
        g = build_triangle()
        g.remove_node(1)
        assert g.node_count == 2
        assert g.edge_count == 1  # only 2 -> 0 survives
        assert g.has_edge(2, 0)

    def test_remove_missing_node_rejected(self):
        with pytest.raises(GraphError):
            DiGraph().remove_node(7)


class TestQueries:
    def test_directionality(self):
        g = DiGraph()
        g.add_edge(1, 2)
        assert list(g.successors(1)) == [2]
        assert list(g.successors(2)) == []
        assert list(g.predecessors(2)) == [1]
        assert list(g.predecessors(1)) == []

    def test_degrees(self):
        g = build_triangle()
        for node in range(3):
            assert g.out_degree(node) == 1
            assert g.in_degree(node) == 1

    def test_weight_missing_edge_rejected(self):
        g = build_triangle()
        with pytest.raises(GraphError):
            g.weight(0, 2)

    def test_unknown_node_rejected(self):
        g = DiGraph()
        with pytest.raises(GraphError):
            g.out_degree(3)
        with pytest.raises(GraphError):
            list(g.successors(3))

    def test_out_edges_with_weights(self):
        g = build_triangle()
        assert list(g.out_edges(0)) == [(1, 0.5)]

    def test_edges_iterates_all(self):
        g = build_triangle()
        assert sorted(g.edges()) == [(0, 1, 0.5), (1, 2, 0.7), (2, 0, 0.9)]

    def test_len_is_node_count(self):
        assert len(build_triangle()) == 3


class TestDerivedGraphs:
    def test_subgraph_keeps_internal_edges(self):
        g = build_triangle()
        sub = g.subgraph([0, 1])
        assert sub.node_count == 2
        assert sub.has_edge(0, 1)
        assert not sub.has_edge(1, 2)

    def test_subgraph_preserves_weights(self):
        g = build_triangle()
        assert g.subgraph([0, 1]).weight(0, 1) == 0.5

    def test_subgraph_ignores_unknown_nodes(self):
        g = build_triangle()
        sub = g.subgraph([0, 99])
        assert sub.node_count == 1

    def test_reversed_flips_edges(self):
        g = build_triangle()
        rev = g.reversed()
        assert rev.has_edge(1, 0) and rev.weight(1, 0) == 0.5
        assert rev.node_count == g.node_count
        assert rev.edge_count == g.edge_count

    def test_copy_is_independent(self):
        g = build_triangle()
        dup = g.copy()
        dup.remove_edge(0, 1)
        assert g.has_edge(0, 1)


@given(
    edges=st.lists(
        st.tuples(st.integers(0, 20), st.integers(0, 20)).filter(
            lambda e: e[0] != e[1]
        ),
        max_size=60,
    )
)
def test_degree_sums_equal_edge_count(edges):
    """Property: sum of out-degrees == sum of in-degrees == edge count."""
    g = DiGraph()
    for u, v in edges:
        g.add_edge(u, v)
    out_total = sum(g.out_degree(n) for n in g.nodes())
    in_total = sum(g.in_degree(n) for n in g.nodes())
    assert out_total == in_total == g.edge_count


@given(
    edges=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)).filter(
            lambda e: e[0] != e[1]
        ),
        max_size=50,
    )
)
def test_reversed_twice_is_identity(edges):
    """Property: reversing twice restores the original edge set."""
    g = DiGraph()
    for u, v in edges:
        g.add_edge(u, v)
    double = g.reversed().reversed()
    assert sorted(double.edges()) == sorted(g.edges())
