"""Tests for repro.analysis.homophily (paper Tables 2-3)."""

import pytest

from repro.analysis.homophily import (
    sample_active_users,
    similarity_by_distance,
    top_rank_distances,
)
from repro.core.profiles import RetweetProfiles
from repro.data.builders import DatasetBuilder


def homophily_world():
    """Users 0,1 adjacent + very similar; users 0,2 distant + similar;
    user 3 isolated in the graph but shares one tweet with 0."""
    builder = DatasetBuilder().with_users(6)
    builder.follow(0, 1)
    builder.follow(1, 4)
    builder.follow(4, 2)  # 0 -> 1 -> 4 -> 2: distance 3
    for tid in range(4):
        builder.tweet(author=5, at=float(tid), tweet_id=tid)
    # 0 and 1 share tweets 0,1; 0 and 2 share tweet 2; 0 and 3 share 3.
    for user, tid in [(0, 0), (1, 0), (0, 1), (1, 1),
                      (0, 2), (2, 2), (0, 3), (3, 3)]:
        builder.retweet(user=user, tweet=tid, at=10.0 + tid * 5 + user)
    return builder.build()


class TestSampleActiveUsers:
    def test_min_retweets_filter(self, small_dataset):
        users = sample_active_users(small_dataset, sample_size=50,
                                    min_retweets=5, seed=0)
        assert all(
            small_dataset.user_retweet_count(u) >= 5 for u in users
        )

    def test_sample_size_respected(self, small_dataset):
        users = sample_active_users(small_dataset, sample_size=20,
                                    min_retweets=1, seed=0)
        assert len(users) == 20

    def test_small_pool_taken_whole(self):
        ds = homophily_world()
        users = sample_active_users(ds, sample_size=100, min_retweets=1)
        assert set(users) == {0, 1, 2, 3}

    def test_deterministic(self, small_dataset):
        a = sample_active_users(small_dataset, 20, 1, seed=5)
        b = sample_active_users(small_dataset, 20, 1, seed=5)
        assert a == b


class TestSimilarityByDistance:
    def test_buckets_by_distance(self):
        ds = homophily_world()
        profiles = RetweetProfiles(ds.retweets())
        rows = similarity_by_distance(ds, profiles, users=[0])
        by_label = {row.label: row for row in rows}
        assert by_label["1"].pair_count == 1  # user 1
        assert by_label["3"].pair_count == 1  # user 2
        assert by_label["Impossible"].pair_count == 1  # user 3

    def test_close_pairs_more_similar(self):
        ds = homophily_world()
        profiles = RetweetProfiles(ds.retweets())
        rows = similarity_by_distance(ds, profiles, users=[0])
        by_label = {row.label: row for row in rows}
        assert (
            by_label["1"].mean_similarity > by_label["3"].mean_similarity
        )

    def test_percentages_sum_to_100(self):
        ds = homophily_world()
        profiles = RetweetProfiles(ds.retweets())
        rows = similarity_by_distance(ds, profiles, users=[0, 1, 2])
        assert sum(row.percentage for row in rows) == pytest.approx(100.0)

    def test_empty_users(self):
        ds = homophily_world()
        profiles = RetweetProfiles(ds.retweets())
        assert similarity_by_distance(ds, profiles, users=[]) == []

    def test_paper_homophily_shape_on_synthetic(self, small_dataset):
        """Table 2's load-bearing signature: directly connected pairs have
        the highest mean similarity ("strong homophily").  Note the
        paper's own tail is non-monotone (their d4 > d3 and "Impossible"
        > d2), so only the d1 dominance is asserted."""
        profiles = RetweetProfiles(small_dataset.retweets())
        users = sample_active_users(small_dataset, 60, 5, seed=1)
        rows = similarity_by_distance(small_dataset, profiles, users)
        by_distance = {row.distance: row for row in rows}
        d1 = by_distance[1].mean_similarity
        total = sum(r.pair_count for r in rows)
        global_mean = (
            sum(r.mean_similarity * r.pair_count for r in rows) / total
        )
        assert d1 > by_distance[2].mean_similarity
        assert d1 > global_mean


class TestTopRankDistances:
    def test_rank_rows_shape(self, small_dataset):
        profiles = RetweetProfiles(small_dataset.retweets())
        users = sample_active_users(small_dataset, 40, 5, seed=2)
        rows = top_rank_distances(small_dataset, profiles, users, top_n=5)
        assert [row.rank for row in rows] == [1, 2, 3, 4, 5]
        for row in rows:
            if row.distance_percentages:
                assert sum(row.distance_percentages.values()) == pytest.approx(
                    100.0
                )

    def test_rank1_closer_than_rank5(self, small_dataset):
        """Table 3's signature: the most similar user is the closest."""
        profiles = RetweetProfiles(small_dataset.retweets())
        users = sample_active_users(small_dataset, 80, 5, seed=3)
        rows = top_rank_distances(small_dataset, profiles, users, top_n=5)
        assert rows[0].average_distance <= rows[4].average_distance + 0.3

    def test_users_without_enough_peers_skipped(self):
        ds = homophily_world()
        profiles = RetweetProfiles(ds.retweets())
        rows = top_rank_distances(ds, profiles, users=[2], top_n=5)
        assert all(not row.distance_percentages for row in rows)
