"""Differential harness: the vectorized backend vs the reference path.

The vectorized sparse backend (:mod:`repro.core.simmatrix`) is only
trustworthy because this suite pins it to the reference implementation:
on randomized synthetic corpora both backends must produce **identical**
SimGraph edge sets (and node sets), similarities within 1e-12, and the
end-to-end recommender must emit identical top-k output.  Any change to
either path that breaks agreement fails here first.
"""

from __future__ import annotations

import pytest

from repro.core import RetweetProfiles, SimGraphBuilder, SimGraphRecommender
from repro.data import temporal_split
from repro.synth import SynthConfig, generate_dataset
from repro.utils.topk import top_k_items

#: Randomized synthetic corpora of several seeds/sizes (acceptance asks
#: for at least three).
CONFIGS = [
    SynthConfig(n_users=120, n_communities=4, seed=11),
    SynthConfig(n_users=250, n_communities=6, seed=23),
    SynthConfig(n_users=400, n_communities=6, seed=7, tweets_alpha=1.25),
]

SIM_TOLERANCE = 1e-12


def edge_map(simgraph) -> dict[tuple[int, int], float]:
    return {(u, v): w for u, v, w in simgraph.graph.edges()}


def assert_same_simgraph(reference, vectorized) -> None:
    """Identical edge set + node set, weights within 1e-12."""
    ref_edges = edge_map(reference)
    vec_edges = edge_map(vectorized)
    assert set(ref_edges) == set(vec_edges)
    assert set(reference.users()) == set(vectorized.users())
    for pair, weight in ref_edges.items():
        assert vec_edges[pair] == pytest.approx(weight, abs=SIM_TOLERANCE)


@pytest.fixture(
    scope="module", params=range(len(CONFIGS)), ids=lambda i: f"corpus{i}"
)
def corpus(request):
    dataset = generate_dataset(CONFIGS[request.param])
    return dataset, RetweetProfiles(dataset.retweets())


def build_pair(dataset, profiles, exploration_graph=None, users=None, **kw):
    graph = exploration_graph if exploration_graph is not None else dataset.follow_graph
    reference = SimGraphBuilder(backend="reference", **kw).build(
        graph, profiles, users=users
    )
    vectorized = SimGraphBuilder(backend="vectorized", **kw).build(
        graph, profiles, users=users
    )
    return reference, vectorized


class TestSimGraphDifferential:
    def test_default_tau_identical(self, corpus):
        dataset, profiles = corpus
        reference, vectorized = build_pair(dataset, profiles, tau=0.001)
        assert reference.edge_count > 0
        assert_same_simgraph(reference, vectorized)

    def test_higher_tau_identical(self, corpus):
        dataset, profiles = corpus
        reference, vectorized = build_pair(dataset, profiles, tau=0.005)
        assert_same_simgraph(reference, vectorized)

    def test_capped_influencers_identical(self, corpus):
        dataset, profiles = corpus
        reference, vectorized = build_pair(
            dataset, profiles, tau=0.001, max_influencers=5
        )
        assert_same_simgraph(reference, vectorized)

    def test_one_hop_identical(self, corpus):
        dataset, profiles = corpus
        reference, vectorized = build_pair(dataset, profiles, tau=0.001, hops=1)
        assert_same_simgraph(reference, vectorized)

    def test_restricted_sources_identical(self, corpus):
        dataset, profiles = corpus
        users = sorted(profiles.users())[::3]
        reference, vectorized = build_pair(
            dataset, profiles, users=users, tau=0.001
        )
        assert_same_simgraph(reference, vectorized)

    def test_crossfold_exploration_identical(self, corpus):
        """The §6.3 crossfold path explores the previous SimGraph itself."""
        dataset, profiles = corpus
        previous = SimGraphBuilder(tau=0.001).build(
            dataset.follow_graph, profiles
        )
        reference, vectorized = build_pair(
            dataset, profiles, exploration_graph=previous.graph, tau=0.001
        )
        assert_same_simgraph(reference, vectorized)

    def test_parallel_workers_identical(self, corpus):
        """Chunked multi-process builds return the exact serial edges."""
        dataset, profiles = corpus
        reference = SimGraphBuilder(tau=0.001).build(
            dataset.follow_graph, profiles
        )
        parallel = SimGraphBuilder(
            tau=0.001, backend="vectorized", workers=2, chunk_size=32
        ).build(dataset.follow_graph, profiles)
        assert_same_simgraph(reference, parallel)


class TestRecommenderDifferential:
    TOP_K = 10

    @pytest.fixture(scope="class")
    def recommendations(self):
        dataset = generate_dataset(CONFIGS[1])
        split = temporal_split(dataset)
        outputs = {}
        for backend in ("reference", "vectorized"):
            recommender = SimGraphRecommender(backend=backend)
            recommender.fit(dataset, split.train)
            emitted = []
            for event in split.test[:40]:
                emitted.extend(recommender.on_event(event))
            outputs[backend] = emitted
        return outputs

    def test_same_recommendation_set(self, recommendations):
        reference, vectorized = (
            recommendations["reference"], recommendations["vectorized"],
        )
        assert {(r.user, r.tweet) for r in reference} == {
            (r.user, r.tweet) for r in vectorized
        }
        assert len(reference) > 0

    def test_scores_within_tolerance(self, recommendations):
        # A pair can be re-recommended with an updated score on later
        # events, so compare the chronological score sequence per pair
        # (each pair is emitted at most once per event).
        def sequences(emitted):
            by_pair: dict[tuple[int, int], list[float]] = {}
            for r in emitted:
                by_pair.setdefault((r.user, r.tweet), []).append(r.score)
            return by_pair

        reference = sequences(recommendations["reference"])
        vectorized = sequences(recommendations["vectorized"])
        assert set(reference) == set(vectorized)
        for pair, scores in reference.items():
            assert vectorized[pair] == pytest.approx(
                scores, abs=SIM_TOLERANCE
            )

    def test_identical_topk_per_tweet(self, recommendations):
        """The delivered ranking — top-k users per tweet — is identical."""
        def topk(emitted):
            by_tweet: dict[int, dict[int, float]] = {}
            for r in emitted:
                by_tweet.setdefault(r.tweet, {})[r.user] = r.score
            return {
                tweet: [user for user, _ in top_k_items(scores, self.TOP_K)]
                for tweet, scores in by_tweet.items()
            }

        assert topk(recommendations["reference"]) == topk(
            recommendations["vectorized"]
        )
