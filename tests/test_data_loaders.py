"""Tests for repro.data.loaders (external format import)."""

import pytest

from repro.data.loaders import assemble_dataset, load_edge_list, load_retweet_csv
from repro.data.models import Retweet, Tweet
from repro.exceptions import DatasetError


class TestLoadEdgeList:
    def test_whitespace_and_comma_formats(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# follower followee\n1 2\n3,4\n\n  5\t6\n")
        assert load_edge_list(path) == [(1, 2), (3, 4), (5, 6)]

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("1 2 3\n")
        with pytest.raises(DatasetError, match="expected 2 fields"):
            load_edge_list(path)

    def test_non_integer_rejected(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("a b\n")
        with pytest.raises(DatasetError, match="non-integer"):
            load_edge_list(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("")
        assert load_edge_list(path) == []


class TestLoadRetweetCsv:
    def test_with_header(self, tmp_path):
        path = tmp_path / "rts.csv"
        path.write_text("user,tweet,timestamp\n1,10,5.5\n2,10,6.0\n")
        actions = load_retweet_csv(path)
        assert actions == [Retweet(1, 10, 5.5), Retweet(2, 10, 6.0)]

    def test_without_header(self, tmp_path):
        path = tmp_path / "rts.csv"
        path.write_text("1,10,5.5\n")
        assert load_retweet_csv(path) == [Retweet(1, 10, 5.5)]

    def test_short_row_rejected(self, tmp_path):
        path = tmp_path / "rts.csv"
        path.write_text("1,10\n")
        with pytest.raises(DatasetError, match="expected 3 fields"):
            load_retweet_csv(path)

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "rts.csv"
        path.write_text("1,ten,5.5\n")
        with pytest.raises(DatasetError, match="malformed"):
            load_retweet_csv(path)

    def test_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "rts.csv"
        path.write_text("1,10,5.5\n\n2,10,6.0\n")
        assert len(load_retweet_csv(path)) == 2


class TestAssembleDataset:
    def test_users_from_all_sources(self):
        dataset = assemble_dataset(
            edges=[(1, 2)],
            retweets=[Retweet(3, 7, 10.0)],
        )
        assert set(dataset.users) == {0, 1, 2, 3}

    def test_synthesized_tweets_use_first_retweet_time(self):
        dataset = assemble_dataset(
            edges=[],
            retweets=[Retweet(1, 7, 30.0), Retweet(2, 7, 10.0)],
        )
        assert dataset.tweets[7].created_at == 10.0
        assert dataset.tweets[7].author == 0

    def test_explicit_tweets_used(self):
        tweets = [Tweet(id=7, author=5, created_at=1.0)]
        dataset = assemble_dataset(
            edges=[], retweets=[Retweet(1, 7, 10.0)], tweets=tweets
        )
        assert dataset.tweets[7].author == 5

    def test_self_follows_dropped(self):
        dataset = assemble_dataset(edges=[(1, 1), (1, 2)], retweets=[])
        assert dataset.follow_graph.edge_count == 1

    def test_round_trip_through_pipeline(self, tmp_path):
        """Imported data feeds the full stack without adjustment."""
        edges_path = tmp_path / "edges.txt"
        edges_path.write_text("1 2\n2 3\n3 1\n1 3\n2 1\n3 2\n")
        rts_path = tmp_path / "rts.csv"
        rows = ["user,tweet,timestamp"]
        for tweet in (10, 11):
            for user in (1, 2, 3):
                rows.append(f"{user},{tweet},{10 + tweet + user}.0")
        rts_path.write_text("\n".join(rows) + "\n")

        dataset = assemble_dataset(
            load_edge_list(edges_path), load_retweet_csv(rts_path)
        )
        from repro.core import RetweetProfiles, SimGraphBuilder

        profiles = RetweetProfiles(dataset.retweets())
        simgraph = SimGraphBuilder(tau=0.0).build(
            dataset.follow_graph, profiles
        )
        assert simgraph.edge_count > 0
