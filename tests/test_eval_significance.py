"""Tests for repro.eval.significance."""

import pytest

from repro.eval.significance import bootstrap_hit_gap, hits_per_user


class TestHitsPerUser:
    def test_counts_and_zero_fill(self):
        counts = hits_per_user([(1, 10), (1, 11), (2, 10)], users=[1, 2, 3])
        assert counts == {1: 2, 2: 1, 3: 0}

    def test_foreign_users_ignored(self):
        counts = hits_per_user([(9, 10)], users=[1])
        assert counts == {1: 0}


class TestBootstrapHitGap:
    def test_clear_winner_significant(self):
        users = list(range(40))
        hits_a = [(u, t) for u in users for t in range(3)]
        hits_b = [(u, 0) for u in users[:5]]
        gap = bootstrap_hit_gap(hits_a, hits_b, users, samples=500, seed=1)
        assert gap.mean_difference == 40 * 3 - 5
        assert gap.significant
        assert gap.ci_low > 0
        assert gap.win_probability > 0.99

    def test_tie_not_significant(self):
        users = list(range(40))
        hits_a = [(u, 0) for u in users if u % 2 == 0]
        hits_b = [(u, 0) for u in users if u % 2 == 1]
        gap = bootstrap_hit_gap(hits_a, hits_b, users, samples=500, seed=1)
        assert not gap.significant
        assert gap.ci_low <= 0 <= gap.ci_high

    def test_direction_reverses(self):
        users = list(range(30))
        hits_a = [(u, 0) for u in users[:3]]
        hits_b = [(u, t) for u in users for t in range(2)]
        gap = bootstrap_hit_gap(hits_a, hits_b, users, samples=500, seed=1)
        assert gap.mean_difference < 0
        assert gap.ci_high < 0
        assert gap.win_probability < 0.01

    def test_deterministic_under_seed(self):
        users = list(range(20))
        hits_a = [(u, 0) for u in users[:10]]
        hits_b = [(u, 0) for u in users[10:]]
        a = bootstrap_hit_gap(hits_a, hits_b, users, samples=200, seed=3)
        b = bootstrap_hit_gap(hits_a, hits_b, users, samples=200, seed=3)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_hit_gap([], [], [], samples=100)
        with pytest.raises(ValueError):
            bootstrap_hit_gap([], [], [1], samples=0)
        with pytest.raises(ValueError):
            bootstrap_hit_gap([], [], [1], confidence=1.0)

    def test_interval_ordering(self):
        users = list(range(25))
        hits_a = [(u, 0) for u in users[:12]]
        hits_b = [(u, 0) for u in users[5:]]
        gap = bootstrap_hit_gap(hits_a, hits_b, users, samples=300, seed=0)
        assert gap.ci_low <= gap.ci_high
        assert 0.0 <= gap.win_probability <= 1.0
