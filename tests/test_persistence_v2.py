"""Snapshot persistence properties: v1 <-> v2, mmap, corruption, atomicity.

Hypothesis generates arbitrary small SimGraphs and locks down the
cross-format contract:

* both formats round-trip the exact edge set, weights and tau, and load
  edge-identical to each other;
* ``mmap=True`` and eager v2 loads are bit-identical — same section
  bytes, same compiled CSR, same propagation fixpoints;
* truncated, NaN-weight, non-positive-weight and otherwise corrupted
  snapshots raise :class:`DatasetError` instead of loading quietly;
* saves are atomic: a crashing writer leaves the previous snapshot (and
  no ``.tmp`` litter) behind.
"""

from __future__ import annotations

import json
import struct

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.csr import ArraySimGraph
from repro.core.persistence import load_simgraph, save_simgraph
from repro.core.propagation_csr import make_propagation_engine
from repro.core.simgraph import SimGraph
from repro.exceptions import DatasetError
from repro.graph.digraph import DiGraph


@st.composite
def simgraphs(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    graph = DiGraph()
    graph.add_nodes(range(n))
    pairs = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=24,
        )
    )
    weight = st.floats(
        min_value=1e-6, max_value=1.0, allow_nan=False, allow_infinity=False
    )
    for u, v in pairs:
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v, weight=draw(weight))
    tau = draw(st.floats(min_value=1e-6, max_value=0.1, allow_nan=False))
    return SimGraph(graph, tau=tau)


def _edge_map(simgraph):
    return {
        (u, v): w
        for u in simgraph.users()
        for v, w in simgraph.influencers(u)
    }


@settings(max_examples=50)
@given(simgraphs())
def test_v1_v2_load_edge_identical(tmp_path_factory, simgraph):
    """The two formats persist the same graph."""
    tmp = tmp_path_factory.mktemp("fmt")
    p1 = save_simgraph(simgraph, tmp / "g.v1", format=1)
    p2 = save_simgraph(simgraph, tmp / "g.v2", format=2)
    g1 = load_simgraph(p1)
    g2 = load_simgraph(p2)
    assert g1.node_count == g2.node_count == simgraph.node_count
    assert g1.tau == pytest.approx(g2.tau) == pytest.approx(simgraph.tau)
    e1, e2 = _edge_map(g1), _edge_map(g2)
    assert set(e1) == set(e2) == set(_edge_map(simgraph))
    for pair, w in e1.items():
        assert e2[pair] == w  # exact: both formats round-trip float64


@settings(max_examples=50)
@given(simgraphs())
def test_mmap_and_eager_bit_identical(tmp_path_factory, simgraph):
    """mmap=True and eager v2 loads compile to the same CSR bits."""
    tmp = tmp_path_factory.mktemp("mmap")
    path = save_simgraph(simgraph, tmp / "g.v2", format=2)
    mapped = load_simgraph(path, mmap=True)
    eager = load_simgraph(path, mmap=False)
    assert isinstance(mapped, ArraySimGraph)
    assert isinstance(eager, ArraySimGraph)
    for a, b in zip(mapped.arrays(), eager.arrays()):
        assert a.tobytes() == b.tobytes()
    cm, ce = mapped.csr(), eager.csr()
    assert cm.inf_indptr.tobytes() == ce.inf_indptr.tobytes()
    assert cm.inf_indices.tobytes() == ce.inf_indices.tobytes()
    assert cm.inf_weights.tobytes() == ce.inf_weights.tobytes()
    seeds = [sorted(mapped.users())[:2]]
    rm = make_propagation_engine(
        mapped, prop_backend="csr", csr=cm
    ).propagate_many(seeds)
    re_ = make_propagation_engine(
        eager, prop_backend="csr", csr=ce
    ).propagate_many(seeds)
    assert rm[0].probabilities == re_[0].probabilities


def _small_graph():
    graph = DiGraph()
    graph.add_nodes(range(4))
    graph.add_edge(0, 1, weight=0.5)
    graph.add_edge(1, 2, weight=0.25)
    graph.add_edge(3, 0, weight=0.125)
    return SimGraph(graph, tau=0.001)


def test_mmap_requires_v2(tmp_path):
    path = save_simgraph(_small_graph(), tmp_path / "g.v1", format=1)
    with pytest.raises(DatasetError, match="format-2"):
        load_simgraph(path, mmap=True)


def test_unknown_format_rejected(tmp_path):
    with pytest.raises(DatasetError, match="unknown snapshot format"):
        save_simgraph(_small_graph(), tmp_path / "g", format=3)


@pytest.mark.parametrize("mmap", [False, True])
def test_truncated_v2_raises(tmp_path, mmap):
    path = save_simgraph(_small_graph(), tmp_path / "g.v2", format=2)
    data = path.read_bytes()
    path.write_bytes(data[: len(data) - 16])
    with pytest.raises(DatasetError, match="truncated"):
        load_simgraph(path, mmap=mmap)


def _v2_weights_offset(path) -> int:
    with open(path, "rb") as f:
        header = json.loads(f.readline())
    return header["data_start"] + header["sections"]["weights"]["offset"]


@pytest.mark.parametrize("bad", [float("nan"), float("inf"), -0.5, 0.0])
@pytest.mark.parametrize("mmap", [False, True])
def test_corrupt_v2_weight_raises(tmp_path, bad, mmap):
    path = save_simgraph(_small_graph(), tmp_path / "g.v2", format=2)
    offset = _v2_weights_offset(path)
    data = bytearray(path.read_bytes())
    data[offset + 8 : offset + 16] = struct.pack("<d", bad)
    path.write_bytes(bytes(data))
    with pytest.raises(DatasetError, match="invalid weight"):
        load_simgraph(path, mmap=mmap)


@pytest.mark.parametrize("bad", ["NaN", "Infinity", "-1.0", "0"])
def test_corrupt_v1_weight_raises(tmp_path, bad):
    path = save_simgraph(_small_graph(), tmp_path / "g.v1", format=1)
    lines = path.read_text().splitlines()
    u, v, _ = json.loads(lines[1])
    lines[1] = f"[{u}, {v}, {bad}]"
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(DatasetError, match="invalid weight"):
        load_simgraph(path)


def test_corrupt_v2_indptr_raises(tmp_path):
    path = save_simgraph(_small_graph(), tmp_path / "g.v2", format=2)
    with open(path, "rb") as f:
        header = json.loads(f.readline())
    offset = header["data_start"] + header["sections"]["indptr"]["offset"]
    data = bytearray(path.read_bytes())
    data[offset : offset + 8] = struct.pack("<q", 99)
    path.write_bytes(bytes(data))
    with pytest.raises(DatasetError, match="indptr"):
        load_simgraph(path)


def test_garbage_header_raises(tmp_path):
    path = tmp_path / "junk"
    path.write_bytes(b"\x00\x01\x02 not json\n1234")
    with pytest.raises(DatasetError, match="invalid header"):
        load_simgraph(path)


@pytest.mark.parametrize("format", [1, 2])
def test_save_is_atomic(tmp_path, format, monkeypatch):
    """A crash mid-write leaves the previous snapshot intact, no litter."""
    path = tmp_path / "g.snap"
    save_simgraph(_small_graph(), path, format=format)
    before = path.read_bytes()

    import repro.core.persistence as persistence

    def boom(tmp, dst):
        raise OSError("disk died before rename")

    monkeypatch.setattr(persistence, "_replace_atomically", boom)
    with pytest.raises(OSError):
        save_simgraph(_small_graph(), path, format=format)
    monkeypatch.undo()
    assert path.read_bytes() == before
    assert not path.with_name(path.name + ".tmp").exists()
    # And the survivor still loads.
    assert load_simgraph(path).edge_count == 3


def test_no_tmp_after_successful_save(tmp_path):
    path = save_simgraph(_small_graph(), tmp_path / "g.v2", format=2)
    assert not path.with_name(path.name + ".tmp").exists()


def test_mmap_arrays_are_readonly(tmp_path):
    """A mapped snapshot can never be patched in place — the CSR patch
    paths must refuse and force a recompile instead."""
    path = save_simgraph(_small_graph(), tmp_path / "g.v2", format=2)
    mapped = load_simgraph(path, mmap=True)
    csr = mapped.csr()
    assert not csr.inf_weights.flags.writeable
    assert csr.patch_weights(_small_graph()) is False
    assert csr.patch_rows(_small_graph(), [0]) is False


def test_v2_preserves_isolated_nodes(tmp_path):
    graph = DiGraph()
    graph.add_nodes(range(5))
    graph.add_edge(0, 1, weight=0.5)
    path = save_simgraph(SimGraph(graph, tau=0.01), tmp_path / "g", format=2)
    loaded = load_simgraph(path, mmap=True)
    assert loaded.node_count == 5
    assert loaded.edge_count == 1
    assert set(loaded.users()) == set(range(5))
