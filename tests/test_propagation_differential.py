"""Differential harness: the compiled propagation engines vs the reference.

The compiled backends (:mod:`repro.core.propagation_csr` and the kernel
of :mod:`repro.core.propagation_kernel`) are only trustworthy because
this suite pins them to the reference frontier loop
(:mod:`repro.core.propagation`): on randomized SimGraphs and every
threshold policy (none / static β / dynamic γ(t)), all engines must
produce **identical** :class:`PropagationResult`\\ s — same membership,
probabilities within 1e-12 (the single-task path is bit-identical),
same iteration/update counts, same convergence flag — for cold starts,
warm starts (dict or :class:`CSRWarmState`) and batched scoring.  The
warm-start *equivalence* property (cold fixpoint == incremental
seed-by-seed resumption) is checked on all backends.  Any change to
any path that breaks agreement fails here first.

The kernel engine is constructed directly (not through the factory), so
it runs here even without numba — the interpreted kernels execute the
same literal source the jit compiles; CI's numba leg runs this file
with the compiled kernels.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    CSRPropagationEngine,
    CSRWarmState,
    DynamicThreshold,
    NumbaPropagationEngine,
    PropagationEngine,
    SimGraphRecommender,
    StaticThreshold,
    make_propagation_engine,
)
from repro.core.simgraph import SimGraph
from repro.data import temporal_split
from repro.graph.digraph import DiGraph
from repro.obs import MetricsRegistry
from repro.synth import SynthConfig, generate_dataset

PROB_TOLERANCE = 1e-12

#: Compiled engines under differential test, each pinned to the
#: reference loop.  (Both are bit-identical in practice; the 1e-12
#: tolerance in :func:`assert_same_result` documents the contract the
#: suite would still accept if a future reduction reorders sums.)
COMPILED_ENGINES = {
    "csr": CSRPropagationEngine,
    "numba": NumbaPropagationEngine,
}

#: id -> threshold-policy factory (fresh instance per use; DynamicThreshold
#: caches nothing but symmetry is cheap).
POLICIES = {
    "none": lambda: None,
    "beta": lambda: StaticThreshold(0.02),
    "gamma": lambda: DynamicThreshold(),
}


def random_graph(n, m, seed):
    import numpy as np

    rng = np.random.RandomState(seed)
    graph = DiGraph()
    graph.add_nodes(range(n))
    for _ in range(m):
        u, v = rng.randint(0, n, 2)
        if u != v:
            graph.add_edge(int(u), int(v), weight=float(rng.uniform(0.01, 0.99)))
    return SimGraph(graph, tau=0.0)


def seed_sets_for(simgraph, seed, count=6, max_size=8):
    import numpy as np

    rng = np.random.RandomState(seed)
    users = sorted(simgraph.users())
    sets = []
    for _ in range(count):
        size = rng.randint(1, max_size)
        sets.append(set(rng.choice(users, size=size).tolist()))
    # One set with an off-graph seed: the engines must carry it at 1.0.
    sets.append(set(rng.choice(users, size=2).tolist()) | {10**6})
    return sets


def assert_same_result(reference, csr, tolerance=PROB_TOLERANCE):
    assert reference.iterations == csr.iterations
    assert reference.updates == csr.updates
    assert reference.converged == csr.converged
    assert set(reference.probabilities) == set(csr.probabilities)
    for user, p in reference.probabilities.items():
        assert csr.probabilities[user] == pytest.approx(p, abs=tolerance)


@pytest.fixture(scope="module", params=[3, 17, 29], ids=lambda s: f"graph{s}")
def simgraph(request):
    return random_graph(50, 170, request.param)


@pytest.fixture(params=sorted(COMPILED_ENGINES), ids=str)
def engine_cls(request):
    return COMPILED_ENGINES[request.param]


class TestEngineDifferential:
    @pytest.mark.parametrize("policy", sorted(POLICIES), ids=str)
    def test_cold_start_identical(self, simgraph, engine_cls, policy):
        for i, seeds in enumerate(seed_sets_for(simgraph, seed=policy.__hash__() % 97)):
            ref = PropagationEngine(simgraph, threshold=POLICIES[policy]())
            csr = engine_cls(simgraph, threshold=POLICIES[policy]())
            a = ref.propagate(seeds)
            b = csr.propagate(seeds)
            assert_same_result(a, b)
            # The single-task path is bit-identical, not merely close.
            assert a.probabilities == b.probabilities, (policy, i)

    @pytest.mark.parametrize("policy", sorted(POLICIES), ids=str)
    def test_warm_start_identical(self, simgraph, engine_cls, policy):
        """Resuming from a previous fixpoint (dict initial) agrees."""
        ref = PropagationEngine(simgraph, threshold=POLICIES[policy]())
        csr = engine_cls(simgraph, threshold=POLICIES[policy]())
        sets = seed_sets_for(simgraph, seed=5)
        first, second = sets[0], sets[0] | sets[1]
        warm_ref = ref.propagate(first).probabilities
        warm_csr = csr.propagate(first).probabilities
        assert warm_ref == warm_csr
        assert_same_result(
            ref.propagate(second, initial=warm_ref),
            csr.propagate(second, initial=warm_csr),
        )

    def test_warm_state_matches_dict_initial(self, simgraph, engine_cls):
        """CSRWarmState resumption == the equivalent dict resumption."""
        csr = engine_cls(simgraph)
        sets = seed_sets_for(simgraph, seed=8)
        first, second = sets[0], sets[0] | sets[1]
        result = csr.propagate(first)
        state = csr.take_state()
        assert isinstance(state, CSRWarmState)
        via_state = csr.propagate(second, initial=state)
        via_dict = csr.propagate(second, initial=result.probabilities)
        assert via_state.probabilities == via_dict.probabilities
        assert via_state.iterations == via_dict.iterations
        assert via_state.updates == via_dict.updates

    def test_warm_state_rejects_foreign_graph(self, simgraph, engine_cls):
        donor = engine_cls(random_graph(10, 30, seed=99))
        donor.propagate([0])
        stale = donor.take_state()
        engine = engine_cls(simgraph)
        with pytest.raises(ValueError):
            engine.propagate([0], initial=stale)

    def test_popularity_override_identical(self, simgraph, engine_cls):
        """γ(t) depends on popularity, which can exceed |seeds|."""
        seeds = sorted(simgraph.users())[:4]
        for popularity in (None, 1, 50, 5000):
            assert_same_result(
                PropagationEngine(simgraph, threshold=DynamicThreshold()).propagate(
                    seeds, popularity=popularity
                ),
                engine_cls(simgraph, threshold=DynamicThreshold()).propagate(
                    seeds, popularity=popularity
                ),
            )

    def test_iteration_budget_identical(self, simgraph, engine_cls):
        """Non-convergence (budget exhausted) must agree too."""
        seeds = sorted(simgraph.users())[:3]
        for budget in (1, 2, 3):
            a = PropagationEngine(simgraph, max_iterations=budget).propagate(seeds)
            b = engine_cls(simgraph, max_iterations=budget).propagate(seeds)
            assert_same_result(a, b)

    def test_empty_and_off_graph_seeds(self, simgraph, engine_cls):
        for seeds in ([], [10**6], [10**6, 10**6 + 1]):
            assert_same_result(
                PropagationEngine(simgraph).propagate(seeds),
                engine_cls(simgraph).propagate(seeds),
            )

    def test_metrics_parity(self, simgraph):
        """Deterministic propagation.* counters agree across backends."""
        names = (
            "propagation.runs",
            "propagation.iterations",
            "propagation.updates",
            "propagation.threshold_skips",
        )
        counts = {}
        engines = {
            "reference": lambda registry: make_propagation_engine(
                simgraph,
                prop_backend="reference",
                threshold=StaticThreshold(0.02),
                metrics=registry,
            ),
            "csr": lambda registry: CSRPropagationEngine(
                simgraph, threshold=StaticThreshold(0.02), metrics=registry
            ),
            "numba": lambda registry: NumbaPropagationEngine(
                simgraph, threshold=StaticThreshold(0.02), metrics=registry
            ),
        }
        for backend, factory in engines.items():
            registry = MetricsRegistry()
            engine = factory(registry)
            for seeds in seed_sets_for(simgraph, seed=13):
                engine.propagate(seeds)
            snapshot = registry.snapshot()["counters"]
            counts[backend] = {name: snapshot.get(name) for name in names}
        assert counts["reference"] == counts["csr"]
        assert counts["reference"] == counts["numba"]


class TestBatchedDifferential:
    @pytest.mark.parametrize("policy", sorted(POLICIES), ids=str)
    def test_batch_matches_reference_singles(self, simgraph, engine_cls, policy):
        sets = seed_sets_for(simgraph, seed=21)
        ref = PropagationEngine(simgraph, threshold=POLICIES[policy]())
        csr = engine_cls(simgraph, threshold=POLICIES[policy]())
        singles = [ref.propagate(seeds) for seeds in sets]
        batch = csr.propagate_many(sets)
        assert len(batch) == len(sets)
        for a, b in zip(singles, batch):
            assert_same_result(a, b)

    def test_batch_matches_reference_batch(self, simgraph, engine_cls):
        """The reference engine's propagate_many (sequential loop) and
        the compiled joint batches implement the same contract."""
        sets = seed_sets_for(simgraph, seed=34)
        ref = PropagationEngine(simgraph).propagate_many(sets)
        csr = engine_cls(simgraph).propagate_many(sets)
        for a, b in zip(ref, csr):
            assert_same_result(a, b)

    def test_batch_with_mixed_initials(self, simgraph, engine_cls):
        """Warm tasks (dict and CSRWarmState) batched with cold ones."""
        sets = seed_sets_for(simgraph, seed=55)
        csr = engine_cls(simgraph)
        warm_result = csr.propagate(sets[0])
        warm_state = csr.take_state()
        initials = [warm_state, warm_result.probabilities, None]
        pops = [len(sets[0]) + 3, None, None]
        batch = csr.propagate_many(sets[:3], popularities=pops, initials=initials)
        ref = PropagationEngine(simgraph)
        ref.propagate(sets[0])
        expected = [
            ref.propagate(sets[0], popularity=pops[0], initial=warm_result.probabilities),
            ref.propagate(sets[1], initial=warm_result.probabilities),
            ref.propagate(sets[2]),
        ]
        for a, b in zip(expected, batch):
            assert_same_result(a, b)
        assert len(csr.take_states()) == 3

    def test_empty_batch(self, simgraph, engine_cls):
        assert engine_cls(simgraph).propagate_many([]) == []
        assert PropagationEngine(simgraph).propagate_many([]) == []


@st.composite
def random_case(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.floats(min_value=0.01, max_value=0.99),
            ).filter(lambda e: e[0] != e[1]),
            max_size=40,
        )
    )
    graph = DiGraph()
    graph.add_nodes(range(n))
    for u, v, w in edges:
        graph.add_edge(u, v, weight=w)
    seeds = draw(st.sets(st.integers(0, n - 1), min_size=1, max_size=n))
    warm = draw(st.sets(st.integers(0, n - 1), min_size=0, max_size=3))
    policy = draw(st.sampled_from(sorted(POLICIES)))
    return SimGraph(graph, tau=0.0), seeds, warm, policy


@settings(max_examples=80, deadline=None)
@given(random_case())
def test_differential_property(case):
    """Property: every compiled engine agrees exactly with the reference
    on arbitrary graphs, seed sets, warm starts and threshold policies."""
    simgraph, seeds, warm, policy = case
    ref = PropagationEngine(simgraph, threshold=POLICIES[policy]())
    initial_ref = None
    if warm:
        initial_ref = ref.propagate(warm).probabilities
    a = ref.propagate(seeds, initial=initial_ref)
    for engine_cls in COMPILED_ENGINES.values():
        compiled = engine_cls(simgraph, threshold=POLICIES[policy]())
        initial = None
        if warm:
            compiled.propagate(warm)
            initial = compiled.take_state()
        b = compiled.propagate(seeds, initial=initial)
        assert a.probabilities == b.probabilities
        assert (a.iterations, a.updates, a.converged) == (
            b.iterations,
            b.updates,
            b.converged,
        )


@settings(max_examples=40, deadline=None)
@given(random_case())
def test_warm_start_equivalence_property(case):
    """Satellite property: with no threshold, a cold propagation from
    the full seed set equals incrementally adding seeds one at a time
    via ``initial=`` — on both backends.  (β/γ muting intentionally
    breaks this equality, so the property is stated for β = 0; the
    fixpoint tolerance is 1e-10, hence the looser comparison.)"""
    simgraph, seeds, _, _ = case
    ordered = sorted(seeds)
    engines = [
        make_propagation_engine(simgraph, prop_backend="reference"),
        CSRPropagationEngine(simgraph),
        NumbaPropagationEngine(simgraph),
    ]
    for engine in engines:
        cold = engine.propagate(ordered)
        incremental = None
        for i in range(1, len(ordered) + 1):
            incremental = engine.propagate(
                ordered[:i],
                initial=None if i == 1 else incremental.probabilities,
            )
        assert set(cold.probabilities) <= set(incremental.probabilities)
        for user, p in cold.probabilities.items():
            assert incremental.probabilities[user] == pytest.approx(p, abs=1e-8)


class TestRecommenderDifferential:
    """End-to-end: prop_backend must not change a single emission."""

    @pytest.fixture(scope="class")
    def emissions(self):
        import os

        from repro.core import kernel_mode

        dataset = generate_dataset(
            SynthConfig(n_users=250, n_communities=6, seed=23)
        )
        split = temporal_split(dataset)
        outputs = {}
        # Without numba the factory would fall "numba" back to csr; force
        # the interpreted kernels for that leg so the kernel engine is
        # genuinely the one emitting.  CI's numba leg runs it jitted.
        force_python = kernel_mode() == "off"
        for prop_backend in ("reference", "csr", "numba"):
            forced = prop_backend == "numba" and force_python
            if forced:
                os.environ["REPRO_PROP_KERNEL"] = "python"
            try:
                recommender = SimGraphRecommender(prop_backend=prop_backend)
                recommender.fit(dataset, split.train)
                emitted = []
                for event in split.test[:120]:
                    emitted.extend(recommender.on_event(event))
                emitted.extend(recommender.finalize(split.test[119].time))
                outputs[prop_backend] = emitted
            finally:
                if forced:
                    del os.environ["REPRO_PROP_KERNEL"]
        return outputs

    def test_identical_emissions(self, emissions):
        assert len(emissions["reference"]) > 0
        assert emissions["reference"] == emissions["csr"]
        assert emissions["reference"] == emissions["numba"]

    def test_identical_hit_pairs(self, emissions):
        """The hit list — the (user, tweet) pairs delivered — is
        byte-identical across propagation backends."""
        pairs = {
            backend: [(r.user, r.tweet) for r in emitted]
            for backend, emitted in emissions.items()
        }
        assert pairs["reference"] == pairs["csr"]
        assert pairs["reference"] == pairs["numba"]
