"""Tests for repro.core.profiles."""

import math

import pytest

from repro.core.profiles import RetweetProfiles
from repro.data.models import Retweet


def make_profiles() -> RetweetProfiles:
    return RetweetProfiles(
        [
            Retweet(user=1, tweet=10, time=0.0),
            Retweet(user=1, tweet=11, time=1.0),
            Retweet(user=2, tweet=10, time=2.0),
        ]
    )


class TestConstruction:
    def test_from_stream(self):
        profiles = make_profiles()
        assert profiles.profile(1) == {10, 11}
        assert profiles.profile(2) == {10}

    def test_add_idempotent(self):
        profiles = make_profiles()
        profiles.add(1, 10)
        assert profiles.profile_size(1) == 2
        assert profiles.popularity(10) == 2

    def test_extend(self):
        profiles = RetweetProfiles()
        profiles.extend([Retweet(3, 20, 0.0), Retweet(4, 20, 1.0)])
        assert profiles.popularity(20) == 2


class TestQueries:
    def test_unknown_user_empty(self):
        profiles = make_profiles()
        assert profiles.profile(99) == set()
        assert profiles.profile_size(99) == 0
        assert not profiles.has_profile(99)

    def test_users_iterates_profiled(self):
        assert sorted(make_profiles().users()) == [1, 2]

    def test_counts(self):
        profiles = make_profiles()
        assert profiles.user_count == 2
        assert profiles.tweet_count == 2

    def test_retweeters(self):
        assert make_profiles().retweeters(10) == {1, 2}
        assert make_profiles().retweeters(999) == set()


class TestTweetWeight:
    def test_weight_formula(self):
        profiles = make_profiles()
        # Tweet 10 has popularity 2: weight = 1/ln(3).
        assert profiles.tweet_weight(10) == pytest.approx(1.0 / math.log(3))
        # Tweet 11 has popularity 1: weight = 1/ln(2).
        assert profiles.tweet_weight(11) == pytest.approx(1.0 / math.log(2))

    def test_weight_of_unknown_tweet_zero(self):
        assert make_profiles().tweet_weight(999) == 0.0

    def test_popular_tweets_weigh_less(self):
        profiles = RetweetProfiles()
        for user in range(50):
            profiles.add(user, 1)
        profiles.add(0, 2)
        profiles.add(1, 2)
        assert profiles.tweet_weight(1) < profiles.tweet_weight(2)
