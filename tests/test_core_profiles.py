"""Tests for repro.core.profiles."""

import math

import numpy as np
import pytest

from repro.core.profiles import RetweetProfiles
from repro.data.models import Retweet


def make_profiles() -> RetweetProfiles:
    return RetweetProfiles(
        [
            Retweet(user=1, tweet=10, time=0.0),
            Retweet(user=1, tweet=11, time=1.0),
            Retweet(user=2, tweet=10, time=2.0),
        ]
    )


class TestConstruction:
    def test_from_stream(self):
        profiles = make_profiles()
        assert profiles.profile(1) == {10, 11}
        assert profiles.profile(2) == {10}

    def test_add_idempotent(self):
        profiles = make_profiles()
        profiles.add(1, 10)
        assert profiles.profile_size(1) == 2
        assert profiles.popularity(10) == 2

    def test_extend(self):
        profiles = RetweetProfiles()
        profiles.extend([Retweet(3, 20, 0.0), Retweet(4, 20, 1.0)])
        assert profiles.popularity(20) == 2


class TestQueries:
    def test_unknown_user_empty(self):
        profiles = make_profiles()
        assert profiles.profile(99) == set()
        assert profiles.profile_size(99) == 0
        assert not profiles.has_profile(99)

    def test_users_iterates_profiled(self):
        assert sorted(make_profiles().users()) == [1, 2]

    def test_counts(self):
        profiles = make_profiles()
        assert profiles.user_count == 2
        assert profiles.tweet_count == 2

    def test_retweeters(self):
        assert make_profiles().retweeters(10) == {1, 2}
        assert make_profiles().retweeters(999) == set()


class TestTweetWeight:
    def test_weight_formula(self):
        profiles = make_profiles()
        # Tweet 10 has popularity 2: weight = 1/ln(3).
        assert profiles.tweet_weight(10) == pytest.approx(1.0 / math.log(3))
        # Tweet 11 has popularity 1: weight = 1/ln(2).
        assert profiles.tweet_weight(11) == pytest.approx(1.0 / math.log(2))

    def test_weight_of_unknown_tweet_zero(self):
        assert make_profiles().tweet_weight(999) == 0.0

    def test_popular_tweets_weigh_less(self):
        profiles = RetweetProfiles()
        for user in range(50):
            profiles.add(user, 1)
        profiles.add(0, 2)
        profiles.add(1, 2)
        assert profiles.tweet_weight(1) < profiles.tweet_weight(2)


class TestReadOnlyViews:
    """profile()/retweeters() return immutable snapshots for every key.

    Regression: the dict era returned the *live* internal set for known
    keys (a caller's ``.add`` corrupted the profile) but a fresh set for
    unknown keys.
    """

    def test_returns_frozenset_for_all_keys(self):
        profiles = make_profiles()
        assert isinstance(profiles.profile(1), frozenset)
        assert isinstance(profiles.profile(99), frozenset)
        assert isinstance(profiles.retweeters(10), frozenset)
        assert isinstance(profiles.retweeters(999), frozenset)

    def test_mutating_a_copy_never_corrupts_state(self):
        profiles = make_profiles()
        leaked = set(profiles.profile(1))
        leaked.add(12345)
        assert profiles.profile(1) == {10, 11}
        leaked = set(profiles.retweeters(10))
        leaked.add(12345)
        assert profiles.retweeters(10) == {1, 2}

    def test_snapshot_is_stable_across_adds(self):
        profiles = make_profiles()
        before = profiles.profile(1)
        profiles.add(1, 99)
        assert before == {10, 11}
        assert profiles.profile(1) == {10, 11, 99}


class TestFromArrays:
    """The CSR-backed bulk path answers exactly like the dict path."""

    PAIRS = [
        (1, 10), (1, 11), (2, 10), (2, 10),  # duplicate pair
        (3, 12), (3, 10), (5, 11),
    ]

    def _both(self):
        dict_path = RetweetProfiles()
        for user, tweet in self.PAIRS:
            dict_path.add(user, tweet)
        users = np.array([p[0] for p in self.PAIRS])
        tweets = np.array([p[1] for p in self.PAIRS])
        return dict_path, RetweetProfiles.from_arrays(users, tweets)

    def test_queries_identical(self):
        ref, csr = self._both()
        for user in list(ref.users()) + [99]:
            assert csr.profile(user) == ref.profile(user)
            assert csr.profile_size(user) == ref.profile_size(user)
            assert csr.has_profile(user) == ref.has_profile(user)
        for tweet in list(ref.tweets()) + [999]:
            assert csr.retweeters(tweet) == ref.retweeters(tweet)
            assert csr.popularity(tweet) == ref.popularity(tweet)
            assert csr.tweet_weight(tweet) == pytest.approx(
                ref.tweet_weight(tweet)
            )
        assert sorted(csr.users()) == sorted(ref.users())
        assert sorted(csr.tweets()) == sorted(ref.tweets())
        assert csr.user_count == ref.user_count
        assert csr.tweet_count == ref.tweet_count

    def test_bulk_base_is_clean(self):
        _, csr = self._both()
        assert not csr.has_dirty
        assert csr.dirty_users == frozenset()

    def test_overlay_add_on_frozen_base(self):
        _, csr = self._both()
        csr.add(1, 99)  # new tweet for a base user
        csr.add(42, 10)  # new user on a base tweet
        csr.add(1, 10)  # duplicate of a base pair: no-op
        assert csr.profile(1) == {10, 11, 99}
        assert csr.retweeters(10) == {1, 2, 3, 42}
        assert csr.popularity(10) == 4
        assert csr.user_count == 5
        assert csr.tweet_count == 4
        assert csr.dirty_users == {1, 42}
        assert csr.dirty_tweets == {99, 10}
        csr.mark_clean()
        assert not csr.has_dirty

    def test_array_accessors(self):
        _, csr = self._both()
        assert csr.profile_array(1).tolist() == [10, 11]
        assert csr.retweeters_array(10).tolist() == [1, 2, 3]
        csr.add(1, 5)
        assert csr.profile_array(1).tolist() == [5, 10, 11]
        assert csr.profile_array(404).tolist() == []

    def test_empty_arrays(self):
        profiles = RetweetProfiles.from_arrays(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert profiles.user_count == 0
        assert profiles.profile(1) == set()
        profiles.add(1, 2)
        assert profiles.profile(1) == {2}

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError, match="parallel"):
            RetweetProfiles.from_arrays(
                np.array([1, 2]), np.array([10])
            )
