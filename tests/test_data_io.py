"""Tests for repro.data.io."""

import json

import pytest

from repro.data.io import load_dataset, save_dataset
from repro.exceptions import DatasetError


class TestRoundTrip:
    def test_tiny_dataset_round_trip(self, tiny_dataset, tmp_path):
        save_dataset(tiny_dataset, tmp_path / "ds")
        loaded = load_dataset(tmp_path / "ds")
        assert loaded.user_count == tiny_dataset.user_count
        assert loaded.tweet_count == tiny_dataset.tweet_count
        assert loaded.retweet_count == tiny_dataset.retweet_count
        assert loaded.follow_graph.edge_count == (
            tiny_dataset.follow_graph.edge_count
        )
        assert loaded.retweets() == tiny_dataset.retweets()

    def test_preserves_profiles_and_popularity(self, tiny_dataset, tmp_path):
        save_dataset(tiny_dataset, tmp_path / "ds")
        loaded = load_dataset(tmp_path / "ds")
        for user in loaded.users:
            assert loaded.profile(user) == tiny_dataset.profile(user)
        for tweet in loaded.tweets:
            assert loaded.popularity(tweet) == tiny_dataset.popularity(tweet)

    def test_preserves_user_metadata(self, small_dataset, tmp_path):
        save_dataset(small_dataset, tmp_path / "ds")
        loaded = load_dataset(tmp_path / "ds")
        sample = next(iter(small_dataset.users.values()))
        reloaded = loaded.users[sample.id]
        assert reloaded.community == sample.community
        assert reloaded.interests == sample.interests

    def test_creates_directory(self, tiny_dataset, tmp_path):
        target = tmp_path / "nested" / "dir"
        save_dataset(tiny_dataset, target)
        assert (target / "meta.json").exists()


class TestErrors:
    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            load_dataset(tmp_path / "nowhere")

    def test_wrong_format_version_rejected(self, tiny_dataset, tmp_path):
        path = save_dataset(tiny_dataset, tmp_path / "ds")
        meta = json.loads((path / "meta.json").read_text())
        meta["format"] = 999
        (path / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(DatasetError):
            load_dataset(path)

    def test_count_mismatch_rejected(self, tiny_dataset, tmp_path):
        path = save_dataset(tiny_dataset, tmp_path / "ds")
        meta = json.loads((path / "meta.json").read_text())
        meta["retweets"] += 1
        (path / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(DatasetError):
            load_dataset(path)

    def test_corrupt_jsonl_rejected(self, tiny_dataset, tmp_path):
        path = save_dataset(tiny_dataset, tmp_path / "ds")
        with open(path / "retweets.jsonl", "a", encoding="utf-8") as f:
            f.write("{not json}\n")
        with pytest.raises(DatasetError):
            load_dataset(path)

    def test_blank_lines_tolerated(self, tiny_dataset, tmp_path):
        path = save_dataset(tiny_dataset, tmp_path / "ds")
        with open(path / "users.jsonl", "a", encoding="utf-8") as f:
            f.write("\n\n")
        loaded = load_dataset(path)
        assert loaded.user_count == tiny_dataset.user_count
