"""Coordinator behaviour: fault paths, empty shards, config validation."""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro.data.builders import DatasetBuilder
from repro.exceptions import ConfigError, DatasetError, ShardError
from repro.service import RecommendationService, ServiceConfig
from repro.shard import ShardedRecommendationService
from repro.shard.replay import drive_service, ingest_graph

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)


def _dataset():
    """Five users, two tight follow clusters, a handful of retweets."""
    return (
        DatasetBuilder()
        .with_users(6)
        .follow(0, 1).follow(1, 0).follow(2, 0).follow(2, 1)
        .follow(3, 4).follow(4, 3).follow(5, 3).follow(5, 4)
        .tweet(author=1, at=0.0, tweet_id=0)
        .tweet(author=4, at=10.0, tweet_id=1)
        .retweet(user=0, tweet=0, at=50.0)
        .retweet(user=2, tweet=0, at=90.0)
        .retweet(user=3, tweet=1, at=120.0)
        .retweet(user=5, tweet=1, at=160.0)
        .build()
    )


def _config(**overrides):
    base = dict(rebuild_strategy="delta", use_scheduler=False)
    base.update(overrides)
    return ServiceConfig(**base)


# ----------------------------------------------------------------------
# Configuration validation
# ----------------------------------------------------------------------
def test_rejects_zero_shards():
    with pytest.raises(ConfigError):
        ShardedRecommendationService(0)


def test_rejects_unshardable_rebuild_strategy():
    with pytest.raises(ConfigError, match="crossfold"):
        ShardedRecommendationService(
            2, config=ServiceConfig(rebuild_strategy="crossfold")
        )


def test_rejects_non_reference_backends():
    with pytest.raises(ConfigError, match="backend='reference'"):
        ShardedRecommendationService(
            2,
            config=ServiceConfig(
                rebuild_strategy="delta", backend="vectorized"
            ),
        )
    with pytest.raises(ConfigError, match="prop_backend 'reference'"):
        ShardedRecommendationService(
            2,
            config=ServiceConfig(rebuild_strategy="delta", prop_backend="csr"),
        )


def test_worker_prop_backend_resolution(monkeypatch):
    """'numba'/'auto' ship kernel workers only when the kernel can run."""
    monkeypatch.setenv("REPRO_PROP_KERNEL", "python")
    for requested in ("numba", "auto"):
        service = ShardedRecommendationService(
            2,
            config=ServiceConfig(
                rebuild_strategy="delta", prop_backend=requested
            ),
        )
        assert service._worker_prop_backend == "numba"
        service.close()
    monkeypatch.setenv("REPRO_PROP_KERNEL", "off")
    # 'auto' degrades silently; explicit 'numba' warns and counts.
    service = ShardedRecommendationService(
        2, config=ServiceConfig(rebuild_strategy="delta", prop_backend="auto")
    )
    assert service._worker_prop_backend == "reference"
    service.close()
    with pytest.warns(RuntimeWarning, match="falling back"):
        service = ShardedRecommendationService(
            2,
            config=ServiceConfig(
                rebuild_strategy="delta", prop_backend="numba"
            ),
        )
    assert service._worker_prop_backend == "reference"
    service.close()


def test_explicit_rebuild_strategy_validated():
    service = ShardedRecommendationService(
        2, config=_config(), start_method="inprocess"
    )
    service.add_user(1)
    with pytest.raises(ConfigError):
        service.rebuild("crossfold")
    service.close()


def test_duplicate_tweet_and_unknown_tweet_errors():
    service = ShardedRecommendationService(
        2, config=_config(), start_method="inprocess"
    )
    service.add_user(1)
    service.post_tweet(7, author=1, at=0.0)
    with pytest.raises(DatasetError):
        service.post_tweet(7, author=1, at=1.0)
    with pytest.raises(DatasetError):
        service.retweet(user=1, tweet=99, at=2.0)
    service.close()


# ----------------------------------------------------------------------
# Empty shards
# ----------------------------------------------------------------------
def test_more_shards_than_users_routes_and_merges_exactly():
    """Shards owning zero users must not disturb routing or the merge."""
    dataset = _dataset()
    retweets = dataset.retweets()
    config = _config()

    single = RecommendationService(config)
    ingest_graph(single, dataset)
    expected = drive_service(single, dataset, retweets)

    sharded = ShardedRecommendationService(
        8, config=config, start_method="inprocess"
    )
    ingest_graph(sharded, dataset)
    got = drive_service(sharded, dataset, retweets)
    assert got == expected
    assert sharded.stats == single.stats
    assert 0 in sharded.plan.shard_sizes()  # at least one shard is empty
    sharded.close()


# ----------------------------------------------------------------------
# Fault paths
# ----------------------------------------------------------------------
@needs_fork
def test_dead_worker_surfaces_shard_error_without_hanging():
    dataset = _dataset()
    service = ShardedRecommendationService(
        2, config=_config(), start_method="fork", request_timeout=30.0
    )
    ingest_graph(service, dataset)
    service.post_tweet(0, author=1, at=0.0)  # spawns workers (first rebuild)
    assert service.plan is not None

    victim = service._workers[0]
    victim._proc.kill()
    victim._proc.join(timeout=5.0)

    started = time.monotonic()
    with pytest.raises(ShardError, match="shard 0"):
        service.rebuild("from scratch")
    assert time.monotonic() - started < 10.0
    service.close()


@needs_fork
def test_worker_exception_reports_traceback():
    service = ShardedRecommendationService(
        2, config=_config(), start_method="fork", request_timeout=30.0
    )
    service.add_user(1)
    service.add_user(2)
    service.post_tweet(0, author=1, at=0.0)
    with pytest.raises(ShardError, match="unknown shard op"):
        service._request_all([0], "no-such-op", {0: {}})
    # The worker survives a bad request and keeps serving.
    replies = service._request_all([0], "ping", {0: {}})
    assert replies[0]["shard"] == 0
    service.close()


def test_close_is_idempotent_and_blocks_reuse():
    service = ShardedRecommendationService(
        2, config=_config(), start_method="inprocess"
    )
    service.add_user(1)
    service.post_tweet(0, author=1, at=0.0)
    service.close()
    service.close()
    fresh = ShardedRecommendationService(
        2, config=_config(), start_method="inprocess"
    )
    fresh.close()
    with pytest.raises(ShardError, match="closed"):
        fresh.post_tweet(0, author=1, at=0.0)


@needs_fork
def test_context_manager_shuts_workers_down():
    dataset = _dataset()
    with ShardedRecommendationService(
        2, config=_config(), start_method="fork"
    ) as service:
        ingest_graph(service, dataset)
        drive_service(service, dataset, dataset.retweets())
        procs = [w._proc for w in service._workers]
        assert all(p.is_alive() for p in procs)
    for proc in procs:
        proc.join(timeout=5.0)
    assert not any(p.is_alive() for p in procs)
