"""Tests for repro.synth.config."""

import pytest

from repro.exceptions import ConfigError
from repro.synth.config import SynthConfig


class TestValidation:
    def test_defaults_valid(self):
        SynthConfig()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"n_users": 1},
            {"n_communities": 0},
            {"n_communities": 50, "n_users": 10},
            {"n_topics": 1, "topics_per_community": 3},
            {"interest_concentration": 0.0},
            {"interest_concentration": 1.5},
            {"out_degree_alpha": 0.0},
            {"min_out_degree": 0},
            {"min_out_degree": 10, "max_out_degree": 5},
            {"community_bias": -0.1},
            {"community_bias": 1.1},
            {"time_span": 0.0},
            {"tweets_alpha": -1.0},
            {"min_tweets_per_user": 0},
            {"base_retweet_rate": 0.0},
            {"base_retweet_rate": 1.5},
            {"virality_tail": 1.0},
            {"depth_decay": 0.0},
            {"max_cascade_size": 0},
            {"delay_log_sigma": 0.0},
            {"max_lifetime": 0.0},
            {"discovery_mean": -1.0},
            {"discovery_min_alignment": 1.5},
            {"seed": -1},
        ],
    )
    def test_invalid_values_rejected(self, overrides):
        with pytest.raises(ConfigError):
            SynthConfig(**overrides)

    def test_frozen(self):
        config = SynthConfig()
        with pytest.raises(AttributeError):
            config.n_users = 5  # type: ignore[misc]


class TestScaled:
    def test_override_applies(self):
        config = SynthConfig().scaled(n_users=50)
        assert config.n_users == 50
        assert config.seed == SynthConfig().seed

    def test_override_revalidates(self):
        with pytest.raises(ConfigError):
            SynthConfig().scaled(n_users=1)

    def test_original_unchanged(self):
        base = SynthConfig()
        base.scaled(n_users=99)
        assert base.n_users == 1000
