"""Property tests for the §5.4 policies: γ(t) thresholds and δ scheduling.

The Hill-function threshold and the postponed scheduler are the two
pieces of the paper whose correctness is a set of *inequalities*, not a
worked example — exactly what property testing covers best:

* γ(t) = m^p / (k^p + m^p) is bounded in [0, 1), monotone in the
  popularity m(t), equals 1/2 at m = k, and rejects non-positive k/p;
* the δ scheduler never releases a batch before its due time, releases
  batches in non-decreasing due-time order, keeps users FIFO within a
  batch, and loses / duplicates no event.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.scheduler import DelayPolicy, PostponedScheduler
from repro.core.thresholds import DynamicThreshold
from repro.data.models import Retweet

# ----------------------------------------------------------------------
# γ(t) — the Hill-function dynamic threshold
# ----------------------------------------------------------------------

ks = st.floats(min_value=0.1, max_value=1e4, allow_nan=False)
ps = st.floats(min_value=0.1, max_value=8.0, allow_nan=False)
scales = st.floats(min_value=1e-6, max_value=1.0, allow_nan=False)
popularities = st.integers(min_value=0, max_value=10**6)


@given(k=ks, p=ps, m=popularities)
def test_gamma_is_bounded(k, p, m):
    # Mathematically γ < 1, but float division saturates to exactly 1.0
    # when m^p dwarfs k^p — the closed bound is the honest invariant.
    gamma = DynamicThreshold(k=k, p=p).gamma(m)
    assert 0.0 <= gamma <= 1.0


@given(k=ks, p=ps, scale=scales, m=popularities)
def test_threshold_is_scaled_gamma(k, p, scale, m):
    policy = DynamicThreshold(k=k, p=p, scale=scale)
    assert 0.0 <= policy.threshold_for(m) <= scale
    assert policy.threshold_for(m) == pytest.approx(scale * policy.gamma(m))


@given(k=ks, p=ps, m=st.integers(min_value=0, max_value=10**5),
       step=st.integers(min_value=1, max_value=1000))
def test_gamma_is_monotone_in_popularity(k, p, m, step):
    """More popular tweets never get a *lower* threshold (paper §5.4)."""
    policy = DynamicThreshold(k=k, p=p)
    assert policy.gamma(m + step) >= policy.gamma(m)


@given(k=st.integers(min_value=1, max_value=10**4), p=ps)
def test_gamma_half_point_at_k(k, p):
    """γ reaches exactly 1/2 when m(t) = k, by construction."""
    assert DynamicThreshold(k=float(k), p=p).gamma(k) == pytest.approx(0.5)


@given(k=ks, p=ps)
def test_gamma_zero_for_unshared_tweet(k, p):
    assert DynamicThreshold(k=k, p=p).gamma(0) == 0.0


@given(bad=st.floats(max_value=0.0, allow_nan=False))
def test_non_positive_k_and_p_rejected(bad):
    with pytest.raises(ValueError):
        DynamicThreshold(k=bad)
    with pytest.raises(ValueError):
        DynamicThreshold(p=bad)
    with pytest.raises(ValueError):
        DynamicThreshold(scale=bad)


# ----------------------------------------------------------------------
# δ — the postponed scheduler
# ----------------------------------------------------------------------

#: (tweet, user, inter-arrival gap) triples; gaps keep the stream sorted.
event_streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=30),
        st.floats(min_value=0.0, max_value=7200.0, allow_nan=False),
    ),
    min_size=1,
    max_size=60,
)

policies = st.builds(
    DelayPolicy,
    scale=st.floats(min_value=1.0, max_value=7200.0),
    min_delay=st.floats(min_value=0.0, max_value=300.0),
    max_delay=st.floats(min_value=300.0, max_value=14400.0),
)


def to_stream(triples) -> list[Retweet]:
    events, clock = [], 0.0
    for tweet, user, gap in triples:
        clock += gap
        events.append(Retweet(user=user, tweet=tweet, time=clock))
    return events


@given(triples=event_streams, policy=policies)
def test_no_batch_released_before_due(triples, policy):
    """A task released at event time *now* was due at or before *now*,
    and never before the batch's first event entered the scheduler."""
    scheduler = PostponedScheduler(policy)
    first_seen: dict[int, float] = {}
    for event in to_stream(triples):
        released = scheduler.offer(event)
        for task in released:
            assert task.due_time <= event.time
            assert task.due_time >= first_seen[task.tweet]
            # A released tweet may reopen later with a fresh first_seen —
            # possibly by this very event, so pop before the setdefault.
            first_seen.pop(task.tweet, None)
        first_seen.setdefault(event.tweet, event.time)


@given(triples=event_streams, policy=policies)
def test_release_order_is_non_decreasing_due_time(triples, policy):
    scheduler = PostponedScheduler(policy)
    due_times = []
    for event in to_stream(triples):
        due_times.extend(t.due_time for t in scheduler.offer(event))
    assert due_times == sorted(due_times)


@given(triples=event_streams, policy=policies)
def test_users_fifo_within_batch(triples, policy):
    """Within a tweet's batch, users appear in arrival order."""
    scheduler = PostponedScheduler(policy)
    arrival: dict[int, list[int]] = {}
    events = to_stream(triples)
    released = []
    for event in events:
        released.extend(scheduler.offer(event))
        arrival.setdefault(event.tweet, []).append(event.user)
    released.extend(scheduler.flush(now=events[-1].time))
    consumed: dict[int, int] = {}
    for task in released:
        start = consumed.get(task.tweet, 0)
        expected = arrival[task.tweet][start:start + len(task.users)]
        assert list(task.users) == expected
        consumed[task.tweet] = start + len(task.users)


@given(triples=event_streams, policy=policies)
def test_no_event_lost_or_duplicated(triples, policy):
    """offer + flush together release every event exactly once."""
    scheduler = PostponedScheduler(policy)
    events = to_stream(triples)
    released = []
    for event in events:
        released.extend(scheduler.offer(event))
    released.extend(scheduler.flush(now=events[-1].time))
    out = sorted((t.tweet, u) for t in released for u in t.users)
    assert out == sorted((e.tweet, e.user) for e in events)
    assert scheduler.pending_count == 0
