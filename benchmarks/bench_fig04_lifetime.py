"""Figure 4 — lifetime of a tweet (publication -> last retweet).

Paper shape: 40% of retweeted tweets die before one hour; 90% before 72
hours; retweets beyond that point are rare.
"""

from repro.data.stats import lifetime_survival, tweet_lifetimes
from repro.utils.histogram import log_binned_counts
from repro.utils.tables import render_table


def test_fig04_tweet_lifetime(benchmark, bench_dataset, emit):
    lifetimes = benchmark.pedantic(
        tweet_lifetimes, args=(bench_dataset,), rounds=1, iterations=1
    )
    rows = log_binned_counts([max(int(v), 0) for v in lifetimes.values()])
    emit(render_table(
        ["lifetime (hours)", "number of messages"], rows,
        title="Figure 4: lifetime of a tweet",
    ))
    survival = lifetime_survival(lifetimes, (1.0, 24.0, 72.0))
    emit(
        "dead before 1h: {:.0%} (paper 40%), before 72h: {:.0%} "
        "(paper 90%)".format(survival[1.0], survival[72.0])
    )
    assert 0.15 < survival[1.0] < 0.75
    assert survival[72.0] > 0.80
    assert survival[72.0] > survival[24.0] > survival[1.0]
