"""Table 4 — SimGraph characteristics.

Paper values: 1.15M nodes (half the crawl), 4.95M edges, mean similarity
0.0078, mean out-degree 5.9, diameter 21, mean smallest path 7.5 (double
the follow graph's 3.7).  Reproduced shape: a sub-population of the users
survives, in-degree flatter than the follow graph's, and the timed target
is the paper's per-user initialization cost (their Table 5: 311 ms/user
at crawl scale).
"""

from repro.core.simgraph import SimGraphBuilder
from repro.graph.metrics import degree_arrays
from repro.utils.tables import render_table


def test_table4_simgraph_characteristics(
    benchmark, bench_dataset, bench_profiles, sparse_simgraph, emit
):
    builder = SimGraphBuilder(tau=0.001)
    users = sorted(sparse_simgraph.users())[:50]

    def per_user_init():
        for user in users:
            builder.edges_for_user(
                user, bench_dataset.follow_graph, bench_profiles
            )

    benchmark(per_user_init)
    emit(render_table(
        ["feature", "value"],
        sparse_simgraph.table4_rows(sample_size=120, seed=0),
        title="Table 4: SimGraph characteristics",
    ))
    assert 0 < sparse_simgraph.node_count <= bench_dataset.user_count
    assert sparse_simgraph.mean_similarity() > 0.0
    # In-degree flatter than the follow graph's (paper §4.1).
    _, sim_in = degree_arrays(sparse_simgraph.graph)
    _, follow_in = degree_arrays(bench_dataset.follow_graph)
    sim_ratio = sim_in.max() / max(sim_in.mean(), 1e-9)
    follow_ratio = follow_in.max() / max(follow_in.mean(), 1e-9)
    assert sim_ratio < follow_ratio * 1.5
