"""Ablation — the similarity threshold τ of the SimGraph construction.

Sweeps τ and reports graph density and mean edge weight.  Expected:
density falls monotonically with τ while the surviving edges' mean
similarity rises — the precision/reach dial of Definition 4.1.
"""

from repro.core import SimGraphBuilder
from repro.utils.tables import render_table

TAUS = [0.0005, 0.001, 0.005, 0.02]


def test_ablation_tau_sweep(benchmark, bench_dataset, bench_profiles, emit):
    builder = SimGraphBuilder(tau=TAUS[1])
    users = sorted(bench_profiles.users())[:50]

    def build_for_users():
        for user in users:
            builder.edges_for_user(
                user, bench_dataset.follow_graph, bench_profiles
            )

    benchmark(build_for_users)

    rows = []
    previous_edges = None
    previous_mean = None
    for tau in TAUS:
        graph = SimGraphBuilder(tau=tau).build(
            bench_dataset.follow_graph, bench_profiles
        )
        mean_sim = graph.mean_similarity()
        out_deg = graph.edge_count / max(graph.node_count, 1)
        rows.append([
            tau, graph.node_count, graph.edge_count,
            round(out_deg, 2), round(mean_sim, 5),
        ])
        if previous_edges is not None:
            assert graph.edge_count <= previous_edges
            assert mean_sim >= previous_mean
        previous_edges = graph.edge_count
        previous_mean = mean_sim
    emit(render_table(
        ["tau", "nodes", "edges", "mean out-degree", "mean similarity"],
        rows,
        title="Ablation: SimGraph density vs similarity threshold tau",
    ))
