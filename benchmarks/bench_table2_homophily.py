"""Table 2 — evolution of the similarity score with network distance.

Paper values: d1 pairs are 5.96% of similar pairs with the highest mean
similarity (0.0056); d2 ~38% at 0.0021; d3 ~52% at 0.0017; the tail is
flat and non-monotone (their d4 > d3 and "Impossible" > d2).  Reproduced
shape: d1 dominates every other bucket and the global mean; most similar
pairs sit beyond distance 1.
"""

from repro.analysis.homophily import sample_active_users, similarity_by_distance
from repro.utils.tables import render_table


def test_table2_similarity_by_distance(
    benchmark, bench_dataset, bench_profiles, emit
):
    users = sample_active_users(
        bench_dataset, sample_size=150, min_retweets=5, seed=0
    )
    rows = benchmark.pedantic(
        similarity_by_distance,
        args=(bench_dataset, bench_profiles, users),
        rounds=1,
        iterations=1,
    )
    emit(render_table(
        ["Distance", "Nb of pairs", "Perc.", "Average similarity"],
        [
            [r.label, r.pair_count, round(r.percentage, 2),
             round(r.mean_similarity, 5)]
            for r in rows
        ],
        title="Table 2: similarity score through network distance",
    ))
    by_distance = {r.distance: r for r in rows}
    total = sum(r.pair_count for r in rows)
    global_mean = (
        sum(r.mean_similarity * r.pair_count for r in rows) / total
    )
    d1 = by_distance[1]
    # Strong homophily: direct neighbours are the most similar bucket.
    assert d1.mean_similarity > global_mean
    assert d1.mean_similarity >= max(
        r.mean_similarity for r in rows if r.distance != 1
    ) * 0.95
    # But they are a small minority of similar pairs (paper: 5.96%).
    assert d1.percentage < 25.0
