"""Figure 2 — distribution of the number of retweets per tweet.

Paper shape: ~90% never retweeted, ~2% with 2-5, >50 retweets below
0.005% — a steep popularity power law over the paper's exact bins.
"""

from repro.data.stats import retweets_per_tweet
from repro.utils.histogram import FIGURE2_BINS, binned_counts
from repro.utils.tables import render_table


def run(dataset):
    return binned_counts(retweets_per_tweet(dataset), FIGURE2_BINS)


def test_fig02_retweets_per_tweet(benchmark, bench_dataset, emit):
    rows = benchmark.pedantic(
        run, args=(bench_dataset,), rounds=1, iterations=1
    )
    emit(render_table(
        ["number of retweets", "number of tweets"], rows,
        title="Figure 2: distribution of retweets per tweet",
    ))
    by_label = dict(rows)
    total = sum(by_label.values())
    # Majority never retweeted; counts strictly decay across bins.
    assert by_label["0"] > 0.5 * total
    assert by_label["0"] > by_label["1"] > by_label["2-5"] > by_label["6-50"]
    assert by_label["201-500"] + by_label["500+"] < 0.01 * total
