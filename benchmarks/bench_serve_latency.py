"""Serving latency/throughput — micro-batching and graceful degradation.

Two legs, both over the asyncio front-end (:mod:`repro.serve`) driving a
single-worker :class:`~repro.service.RecommendationService`:

* **Saturation** — a closed-loop drain of a uniform retweet stream,
  once with micro-batching on (``max_batch=32``: consecutive events
  coalesce into one ``ingest_batch`` / joint ``propagate_many``) and
  once per-request (``max_batch=1``).  The service runs in scheduler
  mode — the paper's own batching insight (§5: delaying propagation
  coalesces a tweet's retweets) is what the micro-batch amortizes — and
  the bench asserts the batched saturation throughput is at least
  ``RATIO_FLOOR`` times the per-request one.

* **Overload** — an open-loop replay at twice the measured saturation
  rate, with admission calibrated from the
  :class:`~repro.eval.budget.CapacityModel` of that measurement.  The
  server must stay up (zero dropped responses), degrade the over-budget
  tail to warm-cache-only answers (some ``degraded`` responses served
  from the cache, visible both in response labels and the
  ``serve.admission[...]`` counters), and keep the exact p99 latency of
  fully-admitted (``ok``) responses inside the SLO the admission ladder
  was calibrated for.

The measured matrix — per-path seconds/throughput, the capacity model,
and the overload report (p50/p95/p99 per status, fractions, drops) — is
always persisted to ``benchmarks/BENCH_serve_latency.json``.

Env knobs (used by the CI smoke step):

* ``SERVE_BENCH_SMOKE=1`` — shrink the corpus/streams and relax the
  throughput floor to "not slower" (the SLO assert stays, with a
  generous smoke ceiling);
* ``SERVE_BENCH_JSON=path`` — additionally dump the rows as JSON.
"""

from __future__ import annotations

import json
import os
import time

from repro.eval import CapacityModel
from repro.obs import MetricsRegistry
from repro.serve import (
    LoadProfile,
    ServeConfig,
    measure_capacity,
    prime_service,
    run_load,
    synth_requests,
)
from repro.service import ServiceConfig
from repro.utils.tables import render_table

SMOKE = os.environ.get("SERVE_BENCH_SMOKE") == "1"

#: Saturation-leg floor: batched vs per-request dispatch throughput.
RATIO_FLOOR = 1.0 if SMOKE else 2.0
#: Overload-leg SLO for the p99 of fully-admitted responses.  The smoke
#: ceiling is deliberately generous — shared CI runners stall the loop.
SLO_P99 = 1.0 if SMOKE else 0.25

#: Throughput trials per saturation leg; the best one counts (the ratio
#: is a property of the dispatch path, noise on shared runners only ever
#: slows a leg down).
TRIALS = 1 if SMOKE else 3

N_USERS = 150 if SMOKE else 400
LIVE_TWEETS = 40 if SMOKE else 120
SAT_EVENTS = 200 if SMOKE else 600
#: Open-loop overload run length in (approximate) seconds.
OVERLOAD_SECONDS = 0.75 if SMOKE else 1.5
MAX_BATCH = 32
SEED = 11

MATRIX_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_serve_latency.json"
)

_matrix: dict = {"smoke": SMOKE, "cpu_count": os.cpu_count()}


def _persist(key, payload) -> None:
    _matrix[key] = payload
    with open(MATRIX_PATH, "w", encoding="utf-8") as handle:
        json.dump(_matrix, handle, indent=2, sort_keys=True)
        handle.write("\n")
    extra = os.environ.get("SERVE_BENCH_JSON")
    if extra:
        with open(extra, "w", encoding="utf-8") as handle:
            json.dump(_matrix, handle, indent=2, sort_keys=True)
            handle.write("\n")


def _service_config(use_scheduler: bool) -> ServiceConfig:
    return ServiceConfig(prop_backend="csr", use_scheduler=use_scheduler)


def _saturation_leg(max_batch: int, use_scheduler: bool = True):
    """Fresh primed service + uniform stream, drained closed-loop.

    Best of ``TRIALS`` runs: closed-loop drain time is a max-throughput
    measurement, so external stalls only ever bias it downwards.
    """
    best = 0.0
    for _ in range(TRIALS):
        primed = prime_service(
            config=_service_config(use_scheduler),
            n_users=N_USERS,
            live_tweets=LIVE_TWEETS,
            seed=SEED,
        )
        requests = synth_requests(
            primed, SAT_EVENTS, seed=SEED, popularity_skew=0.0
        )
        eps, responses = measure_capacity(
            primed.service, requests, ServeConfig(max_batch=max_batch)
        )
        assert len(responses) == SAT_EVENTS
        assert all(r.status == "ok" for r in responses)
        best = max(best, eps)
    return best


def test_serve_saturation_batched_vs_unbatched(benchmark, emit):
    def measure():
        batched = _saturation_leg(MAX_BATCH)
        unbatched = _saturation_leg(1)
        return batched, unbatched

    batched, unbatched = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratio = batched / unbatched if unbatched > 0 else float("inf")
    emit(render_table(
        ["path", "max_batch", "events", "events/s"],
        [
            ["batched", MAX_BATCH, SAT_EVENTS, f"{batched:.0f}"],
            ["per-request", 1, SAT_EVENTS, f"{unbatched:.0f}"],
            ["ratio", "", "", f"{ratio:.2f}x"],
        ],
        title="Serve saturation: micro-batched vs per-request dispatch",
    ))
    _persist("saturation", {
        "events": SAT_EVENTS,
        "n_users": N_USERS,
        "live_tweets": LIVE_TWEETS,
        "batched": {
            "max_batch": MAX_BATCH, "events_per_s": round(batched, 1),
        },
        "unbatched": {"max_batch": 1, "events_per_s": round(unbatched, 1)},
        "ratio": round(ratio, 2),
        "ratio_floor": RATIO_FLOOR,
    })
    assert ratio >= RATIO_FLOOR, (
        f"micro-batching only {ratio:.2f}x the per-request throughput "
        f"at saturation (floor is {RATIO_FLOOR}x)"
    )


def test_serve_overload_degrades_within_slo(benchmark, emit):
    # Scheduler off: each event propagates, so saturation sits at a rate
    # the asyncio dispatch loop can meaningfully double.
    primed = prime_service(
        config=_service_config(use_scheduler=False),
        n_users=N_USERS,
        live_tweets=LIVE_TWEETS,
        seed=SEED + 1,
    )
    calibration = synth_requests(
        primed, SAT_EVENTS, seed=SEED + 1, popularity_skew=0.0
    )
    saturation_eps, _ = measure_capacity(
        primed.service, calibration, ServeConfig(max_batch=MAX_BATCH)
    )
    model = CapacityModel(
        service_seconds_per_event=1.0 / saturation_eps, utilization=0.8
    )
    # Calibrate the ladder for half the asserted SLO: the capacity model
    # assumes raw-speed queue drain, and on a busy single-core runner
    # the dispatch loop steals cycles from the worker — the 2x margin
    # absorbs that.
    serve_config = ServeConfig.from_capacity(model, slo_p99=SLO_P99 / 2)

    offered = 2.0 * saturation_eps
    n_events = max(50, int(offered * OVERLOAD_SECONDS))
    # Fresh victim service (the calibration run warmed queues/caches of
    # the first); hot-skewed picks so degraded answers find warm states.
    victim = prime_service(
        config=_service_config(use_scheduler=False),
        n_users=N_USERS,
        live_tweets=LIVE_TWEETS,
        seed=SEED + 2,
    )
    requests = synth_requests(
        victim, n_events, seed=SEED + 2, popularity_skew=1.0
    )
    metrics = MetricsRegistry()

    def measure():
        return run_load(
            victim.service,
            requests,
            LoadProfile.steady(rate=offered),
            serve_config,
            metrics,
        )

    report = benchmark.pedantic(measure, rounds=1, iterations=1)
    summary = report.to_dict()
    ok_p99 = report.percentiles("ok")["p99"]
    snapshot = metrics.snapshot()
    admission = {
        rung: snapshot["counters"].get(f"serve.admission[{rung}]", 0)
        for rung in ("full", "degraded", "shed")
    }
    service_snap = victim.service.metrics_snapshot()
    warm_hits = service_snap["gauges"].get("service.warm_hits", 0)
    emit(render_table(
        ["metric", "value"],
        [
            ["offered events/s", f"{offered:.0f}"],
            ["saturation events/s", f"{saturation_eps:.0f}"],
            ["responses", summary["responses"]],
            ["dropped", summary["dropped"]],
            ["ok", summary["statuses"].get("ok", 0)],
            ["degraded", summary["statuses"].get("degraded", 0)],
            ["shed", summary["statuses"].get("shed", 0)],
            ["ok p99 (ms)", f"{ok_p99 * 1000:.1f}"],
            ["SLO p99 (ms)", f"{SLO_P99 * 1000:.0f}"],
            ["warm hits", warm_hits],
        ],
        title="Serve overload: 2x saturation, calibrated admission",
    ))
    _persist("overload", {
        "saturation_events_per_s": round(saturation_eps, 1),
        "offered_events_per_s": round(offered, 1),
        "capacity_model": {
            "service_seconds_per_event": model.service_seconds_per_event,
            "utilization": model.utilization,
            "events_per_second": model.events_per_second,
        },
        "serve_config": {
            "max_batch": serve_config.max_batch,
            "rate": serve_config.rate,
            "shed_depth": serve_config.shed_depth,
            "degrade_depth": serve_config.admission().resolved_degrade_depth,
            "slo_p99": SLO_P99,
        },
        "admission": admission,
        "report": summary,
        "ok_p99_s": ok_p99,
        "warm_hits": warm_hits,
    })
    assert summary["dropped"] == 0, "overload run dropped responses"
    assert len(requests) == summary["responses"]
    assert summary["statuses"].get("degraded", 0) > 0, (
        "2x-over-saturation load never degraded — admission is inert"
    )
    assert report.served_from.get("warm-cache", 0) > 0 and warm_hits > 0, (
        "degraded answers did not serve from the warm cache"
    )
    assert ok_p99 <= SLO_P99, (
        f"p99 of fully-admitted responses {ok_p99 * 1000:.1f}ms exceeds "
        f"the {SLO_P99 * 1000:.0f}ms SLO the ladder was calibrated for"
    )
