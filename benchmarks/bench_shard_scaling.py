"""Sharded replay scaling — event throughput at 1/2/4/8 workers.

The sharded service (``repro.shard``) exists to spread propagation work
across processes while staying bit-identical to the single-process
reference; this bench measures what that buys.  The same synthetic
stream is replayed through the single-process
:class:`~repro.service.engine.RecommendationService` and through
:class:`~repro.shard.ShardedRecommendationService` at each worker
count, with fork workers (real processes, real pipes).  Every sharded
leg's deliveries are compared against the single-process run before its
timing is trusted — a fast divergent service would be worthless.

Recorded per worker count: events/second, speedup vs single-process,
cross-shard fan-outs per routed event (the coordination traffic the
partitioner is minimizing) and the boundary SimGraph edge fraction.

Acceptance is gated on the machine: with fewer physical cores than
workers the parallel legs cannot win (they pay IPC for no concurrency),
so the floors below apply only when ``os.cpu_count()`` provides the
cores and are reported as skipped — with the core count — otherwise.

* full run: >= 2x single-process throughput at 4 workers (needs >= 4
  cores);
* smoke run (``SHARD_BENCH_SMOKE=1``, the CI step): 2 workers, small
  corpus, throughput no worse than single-process (needs >= 2 cores).

Env knobs:

* ``SHARD_BENCH_SMOKE=1`` — small corpus, 2-worker leg only;
* ``SHARD_BENCH_JSON=path`` — dump the measured rows as JSON.

Also runnable directly: ``python benchmarks/bench_shard_scaling.py
[--smoke]`` wraps the pytest invocation.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time

import pytest

from repro.service import RecommendationService, ServiceConfig
from repro.shard import ShardedRecommendationService
from repro.shard.replay import drive_service, ingest_graph
from repro.synth import SynthConfig, generate_dataset
from repro.utils.tables import render_table

DAY = 86400.0

SMOKE = os.environ.get("SHARD_BENCH_SMOKE") == "1"

WORKER_COUNTS = [2] if SMOKE else [1, 2, 4, 8]

CONFIG = (
    SynthConfig(
        n_users=100, n_communities=5, time_span=6 * DAY, seed=42,
    )
    if SMOKE
    else SynthConfig(
        n_users=200, n_communities=8, time_span=10 * DAY, seed=42,
    )
)

#: Replay uses fork workers when available — the measured path is the
#: real IPC deployment, not the in-process protocol shim.
START_METHOD = (
    "fork" if "fork" in multiprocessing.get_all_start_methods() else None
)


def _service_config() -> ServiceConfig:
    return ServiceConfig(rebuild_strategy="delta", rebuild_interval=2 * DAY)


def _replay_single(dataset, retweets):
    service = RecommendationService(_service_config())
    ingest_graph(service, dataset)
    start = time.perf_counter()
    delivered = drive_service(service, dataset, retweets)
    return delivered, time.perf_counter() - start


def _replay_sharded(n_workers, dataset, retweets):
    service = ShardedRecommendationService(
        n_workers, config=_service_config(), start_method=START_METHOD
    )
    try:
        ingest_graph(service, dataset)
        start = time.perf_counter()
        delivered = drive_service(service, dataset, retweets)
        elapsed = time.perf_counter() - start
        snapshot = service.metrics_snapshot()
    finally:
        service.close()
    return delivered, elapsed, snapshot


def _dump_json(name, rows, header):
    path = os.environ.get("SHARD_BENCH_JSON")
    if not path:
        return
    payload = {}
    if os.path.exists(path):
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    payload[name] = [dict(zip(header, row)) for row in rows]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_shard_replay_scaling(benchmark, emit):
    dataset = generate_dataset(CONFIG)
    retweets = dataset.retweets()
    cores = os.cpu_count() or 1

    def measure():
        expected, t_single = _replay_single(dataset, retweets)
        single_rate = len(retweets) / max(t_single, 1e-9)
        rows = [[
            "single", f"{len(retweets)}", f"{t_single:.2f}",
            f"{single_rate:.1f}", "1.00x", "-", "-",
        ]]
        rates = {}
        for n_workers in WORKER_COUNTS:
            delivered, elapsed, snapshot = _replay_sharded(
                n_workers, dataset, retweets
            )
            assert delivered == expected, (
                f"sharded replay at {n_workers} workers diverged from the "
                f"single-process service"
            )
            rate = len(retweets) / max(elapsed, 1e-9)
            rates[n_workers] = rate
            counters = snapshot["counters"]
            routed = counters.get("shard.events_routed", 0)
            fanouts = counters.get("shard.cross_shard_fanouts", 0)
            boundary = snapshot["gauges"].get(
                "shard.boundary_edge_fraction", 0.0
            )
            rows.append([
                f"{n_workers} workers", f"{len(retweets)}", f"{elapsed:.2f}",
                f"{rate:.1f}", f"{rate / single_rate:.2f}x",
                f"{fanouts / max(routed, 1):.2f}", f"{boundary:.3f}",
            ])
        return rows, rates, single_rate

    rows, rates, single_rate = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    header = [
        "service", "events", "elapsed (s)", "events/s", "speedup",
        "fanouts/event", "boundary edge frac",
    ]
    emit(render_table(
        header, rows,
        title=f"Sharded replay throughput ({CONFIG.n_users} users, "
              f"{cores} cores)",
    ))
    _dump_json("shard_replay_scaling", rows, header)

    if SMOKE:
        if cores >= 2:
            assert rates[2] >= single_rate, (
                f"2-worker replay slower than single-process "
                f"({rates[2]:.1f} vs {single_rate:.1f} events/s)"
            )
        else:
            emit(f"throughput floor skipped: {cores} core(s) < 2 workers")
    else:
        if cores >= 4:
            assert rates[4] >= 2.0 * single_rate, (
                f"4-worker replay only {rates[4] / single_rate:.2f}x "
                f"single-process (floor is 2x)"
            )
        else:
            emit(f"4-worker 2x floor skipped: {cores} core(s) < 4 workers")


if __name__ == "__main__":  # pragma: no cover
    import sys

    if "--smoke" in sys.argv:
        os.environ["SHARD_BENCH_SMOKE"] = "1"
    sys.exit(pytest.main(["-q", __file__]))
