"""Propagation speedup — the compiled CSR engine vs the reference loop.

The CSR backend (``repro.core.propagation_csr``) runs Algorithm 1's
frontier fixpoint over flat numpy arrays: each iteration is a handful of
gathers and in-order segment sums instead of a Python loop over dict
adjacency, and ``propagate_many`` advances a whole batch of tweets
jointly through shared sparse products.

All engines must produce *identical* results (the differential suite
pins them bit-for-bit); this bench records the wall-clock gap on three
synthetic corpora across up to five paths —

* ``reference``   — one ``PropagationEngine.propagate`` per tweet;
* ``csr``         — one ``CSRPropagationEngine.propagate`` per tweet;
* ``csr batch``   — all tweets in one ``propagate_many`` invocation;
* ``numba``       — one ``NumbaPropagationEngine.propagate`` per tweet
  (jit-compiled kernel; measured only when numba is importable);
* ``numba batch`` — the kernel's ``propagate_many`` (prange across
  tasks) —

and asserts the CSR single path is at least 3x faster on the largest
corpus, plus (when the jitted kernel can run and the machine has the
cores) the kernel batch path at least 5x faster than the CSR batch.
JIT warm-up is excluded from every timing: :func:`ensure_compiled` runs
first and its cost is reported as a separate ``compile_seconds`` figure.
The measured matrix (per-path seconds, events/s, speedups, numba
availability) is *always* persisted to ``benchmarks/BENCH_prop_speedup.json``
— including on machines without numba, where the kernel rows record as
unavailable.  A second bench measures the warm-state cache: every tweet
is scored twice (half its retweeters, then all of them), once cold both
times and once resuming from the cached fixpoint.

Env knobs (used by the CI smoke step):

* ``PROP_BENCH_SMOKE=1`` — run the smallest corpus only and relax the
  speedup floors to "not slower" (1.0x);
* ``PROP_BENCH_JSON=path`` — additionally dump the measured rows as
  JSON for archival.
"""

from __future__ import annotations

import json
import os
import time

from conftest import BENCH_CONFIG
from repro.core import (
    CSRPropagationEngine,
    NUMBA_AVAILABLE,
    NumbaPropagationEngine,
    PropagationEngine,
    RetweetProfiles,
    SimGraphBuilder,
    kernel_mode,
)
from repro.core.propagation_kernel import ensure_compiled
from repro.core.warmcache import WarmStateCache
from repro.synth import SynthConfig, generate_dataset
from repro.utils.tables import render_table

#: (label, corpus, tweets scored).  The influencer cap is looser than
#: the paper-sparsity structural benches (6): propagation throughput is
#: what is measured, so frontiers should carry realistic fan-in.
PROP_CONFIGS = [
    ("small", SynthConfig(
        n_users=800, tweets_alpha=1.2, min_tweets_per_user=2,
        max_tweets_per_user=250, seed=42,
    ), 40),
    ("medium", BENCH_CONFIG, 24),
    ("large", SynthConfig(
        n_users=4000, tweets_alpha=1.2, min_tweets_per_user=2,
        max_tweets_per_user=250, seed=42,
    ), 12),
]

MAX_INFLUENCERS = 25
TAU = 0.001

SMOKE = os.environ.get("PROP_BENCH_SMOKE") == "1"
#: Acceptance floor for the single-task CSR path on the largest corpus;
#: the smoke run only guards against a regression below parity.
SPEEDUP_FLOOR = 1.0 if SMOKE else 3.0
#: Acceptance floor for the kernel batch path vs the CSR batch path on
#: the largest corpus — only enforced when the jitted kernel can run and
#: the machine has enough cores for the prange fan-out to matter.
KERNEL_FLOOR = 1.0 if SMOKE else 5.0
KERNEL_FLOOR_MIN_CORES = 2 if SMOKE else 4
CONFIGS = PROP_CONFIGS[:1] if SMOKE else PROP_CONFIGS

#: The measured matrix is always archived here (numba present or not).
MATRIX_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_prop_speedup.json"
)


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _workload(config, n_tweets):
    """SimGraph + the seed sets of the corpus's most popular tweets."""
    dataset = generate_dataset(config)
    profiles = RetweetProfiles(dataset.retweets())
    simgraph = SimGraphBuilder(
        tau=TAU, max_influencers=MAX_INFLUENCERS, backend="vectorized"
    ).build(dataset.follow_graph, profiles)
    tweets = sorted(
        profiles.tweets(), key=profiles.popularity, reverse=True
    )[:n_tweets]
    return simgraph, [profiles.retweeters(t) for t in tweets]


def _dump_json(name, rows, header):
    path = os.environ.get("PROP_BENCH_JSON")
    if not path:
        return
    payload = {}
    if os.path.exists(path):
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    payload[name] = [dict(zip(header, row)) for row in rows]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _path_entry(seconds, n_events, baseline=None):
    """One matrix cell: wall time, throughput and speedup vs baseline."""
    entry = {
        "seconds": round(seconds, 6),
        "events_per_s": round(n_events / seconds, 2) if seconds > 0 else None,
    }
    if baseline is not None:
        entry["speedup"] = (
            round(baseline / seconds, 2) if seconds > 0 else float("inf")
        )
    return entry


def _persist_matrix(matrix) -> None:
    with open(MATRIX_PATH, "w", encoding="utf-8") as handle:
        json.dump(matrix, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_csr_propagation_speedup(benchmark, emit):
    # The kernel is benched only when it runs jit-compiled: interpreted
    # kernels (REPRO_PROP_KERNEL=python) exist for differential testing,
    # not speed, so timing them would only pollute the archive.
    bench_kernel = NUMBA_AVAILABLE and kernel_mode() == "jit"
    compile_seconds = ensure_compiled() if bench_kernel else None

    def measure():
        rows = []
        kernel_rows = []
        corpora = []
        largest_speedup = 0.0
        largest_kernel_speedup = None
        for label, config, n_tweets in CONFIGS:
            simgraph, seed_sets = _workload(config, n_tweets)
            n_tasks = len(seed_sets)
            reference = PropagationEngine(simgraph)
            singles, t_ref = _timed(
                lambda: [reference.propagate(s) for s in seed_sets]
            )
            csr = CSRPropagationEngine(simgraph)
            compiled, t_csr = _timed(
                lambda: [csr.propagate(s) for s in seed_sets]
            )
            batch, t_batch = _timed(lambda: csr.propagate_many(seed_sets))
            for a, b in zip(singles, compiled):
                assert a.probabilities == b.probabilities, (
                    f"CSR divergence on {label}"
                )
            for a, b in zip(singles, batch):
                assert set(a.probabilities) == set(b.probabilities)
                for user, p in a.probabilities.items():
                    assert abs(b.probabilities[user] - p) < 1e-9
            speedup = t_ref / t_csr if t_csr > 0 else float("inf")
            batch_speedup = t_ref / t_batch if t_batch > 0 else float("inf")
            rows.append([
                label, simgraph.node_count, simgraph.edge_count,
                n_tasks, f"{t_ref * 1000:.0f}",
                f"{t_csr * 1000:.0f}", f"{speedup:.1f}x",
                f"{t_batch * 1000:.0f}", f"{batch_speedup:.1f}x",
            ])
            largest_speedup = speedup
            paths = {
                "reference_single": _path_entry(t_ref, n_tasks),
                "csr_single": _path_entry(t_csr, n_tasks, baseline=t_ref),
                "csr_batch": _path_entry(t_batch, n_tasks, baseline=t_ref),
                "numba_single": None,
                "numba_batch": None,
            }
            if bench_kernel:
                kern = NumbaPropagationEngine(simgraph)
                kern_singles, t_kern = _timed(
                    lambda: [kern.propagate(s) for s in seed_sets]
                )
                kern_batch, t_kern_batch = _timed(
                    lambda: kern.propagate_many(seed_sets)
                )
                # The kernel is bit-identical to the reference, batched
                # or not (prange runs across tasks, never inside a sum).
                for a, b in zip(singles, kern_singles):
                    assert a.probabilities == b.probabilities, (
                        f"kernel divergence on {label}"
                    )
                for a, b in zip(kern_singles, kern_batch):
                    assert a.probabilities == b.probabilities, (
                        f"kernel batch divergence on {label}"
                    )
                paths["numba_single"] = _path_entry(
                    t_kern, n_tasks, baseline=t_csr
                )
                paths["numba_batch"] = _path_entry(
                    t_kern_batch, n_tasks, baseline=t_batch
                )
                kernel_rows.append([
                    label, n_tasks,
                    f"{t_csr * 1000:.0f}", f"{t_kern * 1000:.0f}",
                    f"{t_csr / t_kern if t_kern > 0 else float('inf'):.1f}x",
                    f"{t_batch * 1000:.0f}", f"{t_kern_batch * 1000:.0f}",
                    (f"{t_batch / t_kern_batch:.1f}x"
                     if t_kern_batch > 0 else "inf"),
                ])
                largest_kernel_speedup = (
                    t_batch / t_kern_batch if t_kern_batch > 0
                    else float("inf")
                )
            corpora.append({
                "corpus": label,
                "nodes": simgraph.node_count,
                "edges": simgraph.edge_count,
                "tasks": n_tasks,
                "paths": paths,
            })
        return rows, kernel_rows, corpora, largest_speedup, largest_kernel_speedup

    rows, kernel_rows, corpora, largest_speedup, largest_kernel_speedup = (
        benchmark.pedantic(measure, rounds=1, iterations=1)
    )
    header = [
        "corpus", "nodes", "edges", "tweets", "reference (ms)",
        "csr (ms)", "speedup", "csr batch (ms)", "batch speedup",
    ]
    emit(render_table(
        header, rows,
        title=f"Propagation: reference vs CSR (cap={MAX_INFLUENCERS})",
    ))
    if kernel_rows:
        emit(render_table(
            ["corpus", "tweets", "csr (ms)", "numba (ms)", "speedup",
             "csr batch (ms)", "numba batch (ms)", "batch speedup"],
            kernel_rows,
            title=(
                "Propagation: CSR vs jitted kernel "
                f"(compile {compile_seconds:.2f}s excluded)"
            ),
        ))
    _dump_json("csr_propagation_speedup", rows, header)
    _persist_matrix({
        "smoke": SMOKE,
        "cpu_count": os.cpu_count(),
        "numba": {
            "available": NUMBA_AVAILABLE,
            "kernel_mode": kernel_mode(),
            "benched": bench_kernel,
            "compile_seconds": (
                round(compile_seconds, 3)
                if compile_seconds is not None else None
            ),
        },
        "corpora": corpora,
    })
    assert largest_speedup >= SPEEDUP_FLOOR, (
        f"CSR propagation only {largest_speedup:.1f}x faster on the "
        f"largest corpus (floor is {SPEEDUP_FLOOR}x)"
    )
    if (
        bench_kernel
        and largest_kernel_speedup is not None
        and (os.cpu_count() or 1) >= KERNEL_FLOOR_MIN_CORES
    ):
        assert largest_kernel_speedup >= KERNEL_FLOOR, (
            f"jitted kernel batch only {largest_kernel_speedup:.1f}x "
            f"faster than the CSR batch on the largest corpus "
            f"(floor is {KERNEL_FLOOR}x)"
        )


#: Growth steps per tweet in the warm-cache bench: each tweet is
#: re-scored as its last WAVES retweeters arrive one at a time — the
#: streaming shape the recommender actually runs (Algorithm 1's
#: per-retweet trigger).
WAVES = 4


def test_warm_cache_incremental_speedup(benchmark, emit):
    """Re-scoring a growing tweet: cold restarts vs cached warm state."""
    label, config, n_tweets = CONFIGS[-1] if SMOKE else CONFIGS[1]

    def measure():
        simgraph, seed_sets = _workload(config, n_tweets)
        steps = [
            [sorted(s)[: max(len(s) - WAVES + 1 + k, 1)] for k in range(WAVES)]
            for s in seed_sets
        ]
        cold_engine = CSRPropagationEngine(simgraph)

        def run_cold():
            results = []
            for waves in steps:
                for seeds in waves:
                    results.append(cold_engine.propagate(seeds))
            return results

        warm_engine = CSRPropagationEngine(simgraph)
        cache = WarmStateCache(capacity=len(steps))

        def run_warm():
            results = []
            for tweet, waves in enumerate(steps):
                for seeds in waves:
                    results.append(
                        warm_engine.propagate(seeds, initial=cache.get(tweet))
                    )
                    cache.put(tweet, warm_engine.take_state())
            return results

        cold, t_cold = _timed(run_cold)
        warm, t_warm = _timed(run_warm)
        for a, b in zip(cold, warm):
            for user, p in a.probabilities.items():
                # Warm resumption re-converges within the fixpoint
                # tolerance of the cold run, not bit-identically.
                assert abs(b.probabilities.get(user, 0.0) - p) < 1e-6
        return t_cold, t_warm

    t_cold, t_warm = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(render_table(
        ["path", "corpus", "propagations", "time (ms)"],
        [
            ["csr cold restarts", label, n_tweets * WAVES,
             f"{t_cold * 1000:.0f}"],
            ["csr + warm cache", label, n_tweets * WAVES,
             f"{t_warm * 1000:.0f}"],
        ],
        title="Incremental re-propagation: cold vs warm-state cache",
    ))
    _dump_json(
        "warm_cache_incremental",
        [[label, f"{t_cold * 1000:.0f}", f"{t_warm * 1000:.0f}"]],
        ["corpus", "cold (ms)", "warm (ms)"],
    )
    # The cache must pay for itself (generous slack for CI runners; the
    # streaming shape above measures ~2.5x locally).
    assert t_warm <= t_cold
