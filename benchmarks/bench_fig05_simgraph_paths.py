"""Figure 5 — SimGraph smallest-path distribution.

Paper shape: support stretches to ~21 (vs 15 for the follow graph) with
the mean smallest path doubled (7.5 vs 3.7) — still a small world.
Measured on the sparsity-matched SimGraph (see conftest): at the paper's
~6 influencers per user, similarity paths are longer than follow paths
while remaining small-world.
"""

from repro.graph.metrics import path_length_sample
from repro.utils.tables import render_table


def test_fig05_simgraph_paths(benchmark, bench_dataset, sparse_simgraph, emit):
    counts = benchmark.pedantic(
        path_length_sample,
        args=(sparse_simgraph.graph,),
        kwargs={"sample_size": 120, "seed": 0},
        rounds=1,
        iterations=1,
    )
    rows = sorted(counts.items())
    emit(render_table(
        ["smallest path", "number of nodes"], rows,
        title="Figure 5: SimGraph smallest path distribution",
    ))
    follow_counts = path_length_sample(
        bench_dataset.follow_graph, sample_size=120, seed=0
    )
    assert counts, "SimGraph must be connected enough to sample paths"

    def mean_path(histogram):
        total = sum(histogram.values())
        return sum(d * c for d, c in histogram.items()) / total

    # The paper's claim: similarity paths are longer than follow paths
    # (7.5 vs 3.7 at crawl scale) with at least comparable support...
    assert mean_path(counts) > mean_path(follow_counts)
    assert max(counts) >= max(follow_counts) - 1
    # ...while the graph stays small-world.
    total = sum(counts.values())
    near = sum(c for d, c in counts.items() if d <= 10)
    assert near > 0.7 * total
