"""Ablation — propagation threshold policies (paper §5.4).

Compares the exact algorithm (no threshold), the static β and the dynamic
γ(t) on propagation cost (probability updates) and reach, for a popular
seed set.  Expected: both thresholds cut updates versus the exact run,
with γ(t) cutting more aggressively the more popular the tweet is.
"""

from repro.core import (
    DynamicThreshold,
    NoThreshold,
    PropagationEngine,
    StaticThreshold,
)
from repro.utils.tables import render_table

POLICIES = {
    "none (exact)": NoThreshold(),
    "static beta=0.001": StaticThreshold(0.001),
    "dynamic gamma(t)": DynamicThreshold(k=20.0, p=2.0, scale=0.05),
}


def pick_seeds(bench_dataset, bench_split, count):
    """Retweeters of the most popular train tweet (a 'hot' message)."""
    from collections import Counter

    popularity = Counter(r.tweet for r in bench_split.train)
    tweet, _ = popularity.most_common(1)[0]
    seeds = {r.user for r in bench_split.train if r.tweet == tweet}
    return set(list(sorted(seeds))[:count])


def test_ablation_threshold_policies(benchmark, bench_dataset, bench_split,
                                     bench_simgraph, emit):
    seeds = pick_seeds(bench_dataset, bench_split, 40)
    engines = {
        name: PropagationEngine(bench_simgraph, threshold=policy)
        for name, policy in POLICIES.items()
    }

    benchmark.pedantic(
        engines["dynamic gamma(t)"].propagate,
        args=(seeds,),
        rounds=1,
        iterations=1,
    )

    rows = []
    stats = {}
    for name, engine in engines.items():
        result = engine.propagate(seeds)
        stats[name] = result
        rows.append([
            name, result.iterations, result.updates,
            len(result.probabilities), result.converged,
        ])
    emit(render_table(
        ["policy", "iterations", "updates", "reached users", "converged"],
        rows,
        title="Ablation: propagation threshold policies (popular tweet)",
    ))
    exact = stats["none (exact)"]
    for name in ("static beta=0.001", "dynamic gamma(t)"):
        assert stats[name].updates <= exact.updates
    # The dynamic threshold is the aggressive one on popular messages.
    assert stats["dynamic gamma(t)"].updates <= (
        stats["static beta=0.001"].updates
    )
    assert all(r.converged for r in stats.values())
