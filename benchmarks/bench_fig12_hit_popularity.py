"""Figure 12 — average popularity (total shares) of the tweets behind
each method's hits.

Paper shape: GraphJet's random walks hit popular messages (mean ~113
shares per hit); Bayes produces local, unpopular hits (~6); CF (~35) and
SimGraph (~23) sit in between, blending popular and confidential content.
Reproduced shape: GraphJet's hits are clearly the most popular; the three
similarity/graph methods cluster well below it.
"""

from repro.eval import evaluate_at_k
from repro.utils.tables import render_table


def test_fig12_popularity_of_hits(benchmark, bench_dataset, sweep_report,
                                  replay_results, emit):
    benchmark.pedantic(
        evaluate_at_k,
        args=(replay_results["GraphJet"], 30, bench_dataset.popularity),
        rounds=1,
        iterations=1,
    )
    emit(sweep_report.render(
        "mean_hit_popularity",
        "Figure 12: average number of shares per hit",
        precision=1,
    ))
    at30 = {
        name: metrics[2].mean_hit_popularity
        for name, metrics in sweep_report.series.items()
    }
    others = [at30["SimGraph"], at30["CF"], at30["Bayes"]]
    assert at30["GraphJet"] > max(others)
