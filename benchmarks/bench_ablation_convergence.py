"""Ablation — empirical convergence (paper §5.3).

The paper measures the iteration-matrix norm on its dataset (0.91, "the
worst case scenario") and motivates the §5.4 optimizations with the
observed convergence behaviour.  This bench reproduces the study: the
norm and spectral radius of the bench SimGraph, iteration counts over the
most popular tweets, and how both norms fall as τ sparsifies the graph.
"""

from repro.analysis.convergence import norms_by_tau, study_convergence
from repro.utils.tables import render_table

TAUS = [0.001, 0.005, 0.02]


def test_ablation_convergence(benchmark, bench_dataset, bench_split,
                              bench_profiles, bench_simgraph, emit):
    study = benchmark.pedantic(
        study_convergence,
        args=(bench_simgraph, bench_split.train),
        kwargs={"max_tweets": 30},
        rounds=1,
        iterations=1,
    )
    emit(render_table(
        ["measure", "value"], study.rows(),
        title="Ablation: empirical convergence (30 most popular tweets)",
    ))
    tau_rows = norms_by_tau(bench_dataset.follow_graph, bench_profiles, TAUS)
    emit(render_table(
        ["tau", "||A||", "spectral radius"],
        [[t, round(n, 4), round(r, 4)] for t, n, r in tau_rows],
        title="Ablation: contraction factor vs tau",
    ))
    # §5.3: strictly below 1 (the convergence guarantee) on every graph
    # and at every tau — note the norm is a row-MEAN of similarities, so
    # pruning weak edges can raise it while convergence stays guaranteed.
    assert 0.0 < study.iteration_norm < 1.0
    assert study.spectral_radius <= study.iteration_norm + 1e-9
    for _, norm, radius in tau_rows:
        assert 0.0 <= radius <= norm + 1e-9
        assert norm < 1.0
    # Fast fixpoints in practice — the reason 38 ms/message is possible.
    assert study.mean_iterations < 50
