"""Figure 8 — total hits for the full stratified user set vs k.

Paper shape: SimGraph leads the mid-range (8,509 hits at top-30 vs CF
5,685, Bayes 3,564, GraphJet 2,541); CF's linear candidate growth lets it
catch up and slightly pass SimGraph at very large k; GraphJet trails
everywhere.  Reproduced shape: SimGraph at or near the top through the
mid-range, the CF crossover at large k, GraphJet last.  (Deviation noted
in EXPERIMENTS.md: on the synthetic corpus the Bayes baseline is
competitive with SimGraph at the smallest k values.)
"""

from repro.eval import evaluate_at_k
from repro.utils.tables import render_table


def test_fig08_hits_all_users(benchmark, bench_dataset, sweep_report,
                              replay_results, emit):
    benchmark.pedantic(
        evaluate_at_k,
        args=(replay_results["CF"], 30, bench_dataset.popularity),
        rounds=1,
        iterations=1,
    )
    emit(sweep_report.render("hits", "Figure 8: hits, all target users",
                             precision=0))
    hits = {
        name: [m.hits for m in metrics]
        for name, metrics in sweep_report.series.items()
    }
    k_index = {k: i for i, k in enumerate(sweep_report.k_values)}
    # GraphJet is the weakest method at every k.
    for name in ("SimGraph", "CF", "Bayes"):
        assert all(
            hits[name][i] > hits["GraphJet"][i]
            for i in range(len(sweep_report.k_values))
        )
    # SimGraph leads or ties the mid-range; the small-k Bayes tie is the
    # documented deviation, and the CF crossover lands between k = 50
    # and k = 100 at this scale (the paper sees it near k = 200).
    for k, bayes_floor in ((30, 0.90), (50, 0.95)):
        i = k_index[k]
        assert hits["SimGraph"][i] >= bayes_floor * hits["Bayes"][i]
        assert hits["SimGraph"][i] >= hits["CF"][i]
    for k in (100, 200):
        assert hits["SimGraph"][k_index[k]] >= hits["Bayes"][k_index[k]]
    # CF's linear growth closes the gap by k = 200 (the paper's crossover).
    i200 = k_index[200]
    assert hits["CF"][i200] >= 0.9 * hits["SimGraph"][i200]
