"""Figure 3 — number of retweets per user.

Paper shape: classic power law; mean (156) far above median (37.5); a
quarter of users never retweet at crawl scale.
"""

import numpy as np

from repro.data.stats import retweets_per_user
from repro.utils.histogram import log_binned_counts
from repro.utils.tables import render_table


def test_fig03_retweets_per_user(benchmark, bench_dataset, emit):
    counts = benchmark.pedantic(
        retweets_per_user, args=(bench_dataset,), rounds=1, iterations=1
    )
    rows = log_binned_counts(counts)
    emit(render_table(
        ["number of retweets", "number of users"], rows,
        title="Figure 3: retweets per user (log-binned)",
    ))
    arr = np.asarray(counts, dtype=float)
    mean, median = arr.mean(), float(np.median(arr))
    emit(f"mean = {mean:.1f}, median = {median:.1f} "
         f"(paper: mean 156, median 37.5 at crawl scale)")
    # Power-law signature: mean well above the median.
    assert mean > 1.5 * median
    # The top decile concentrates a large share of all activity.
    top = np.sort(arr)[-len(arr) // 10:].sum()
    assert top > 0.3 * arr.sum()
