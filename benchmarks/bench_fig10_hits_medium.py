"""Figure 10 — hits for the moderate-activity user stratum vs k.

Paper shape: same relative ordering as the full population (Fig. 8), with
hit counts between the low and intensive strata.
"""

from conftest import K_VALUES
from repro.data.models import ActivityClass
from repro.eval import evaluate_sweep
from repro.utils.tables import render_table


def test_fig10_hits_moderate_activity(benchmark, bench_dataset,
                                      bench_targets, replay_results, emit):
    stratum = bench_targets.stratum(ActivityClass.MODERATE)

    def sweep():
        return {
            name: evaluate_sweep(result, K_VALUES,
                                 bench_dataset.popularity, users=stratum)
            for name, result in replay_results.items()
        }

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [k] + [series[name][i].hits for name in series]
        for i, k in enumerate(K_VALUES)
    ]
    emit(render_table(["k"] + list(series), rows,
                      title="Figure 10: hits, moderate-activity stratum",
                      precision=0))
    for i in range(len(K_VALUES)):
        assert series["SimGraph"][i].hits > series["GraphJet"][i].hits
