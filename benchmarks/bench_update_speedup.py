"""Maintenance speedup — delta-scoped rebuilds vs full from-scratch.

The delta engine (``repro.core.delta``) bounds a maintenance run to the
affected region of the dirty sets: core users are rescored with
restricted walks, fringe rows are patched from the core side of the
symmetric measure, and every other row is carried over untouched.  This
bench injects synthetic deltas of controlled size — a seeded sample of
users each retweeting *freshly posted* tweets, the dominant shape of a
real maintenance window (the paper's 72h relevance horizon means old
tweets stop accumulating retweets), which keeps the core equal to the
dirty-user sample so the dirty fraction is the experiment variable —
and measures ``apply_delta`` against ``builder.build`` on the same
updated profiles, for both build backends.  Mixed deltas that also
touch existing tweets (dragging co-retweeters into the core) are
covered by the differential suite; their speedup degrades smoothly
with the induced core size.

Every delta result is verified against its from-scratch rebuild before
timing is trusted: identical edge sets, weights within 1e-12 (fringe
pairs are scored from the other side of the symmetric walk).

Acceptance: at a dirty fraction of 10% or less the reference-backend
delta must be at least 5x faster than the reference from-scratch build.

Env knobs (used by the CI smoke step):

* ``UPDATE_BENCH_SMOKE=1`` — run a small corpus and relax the speedup
  floor to "delta is not slower" (1.0x);
* ``UPDATE_BENCH_JSON=path`` — additionally dump the measured rows as
  JSON for archival.
"""

from __future__ import annotations

import json
import os
import random
import time

from repro.core import RetweetProfiles, SimGraphBuilder
from repro.core.delta import apply_delta
from repro.data import temporal_split
from repro.synth import SynthConfig, generate_dataset
from repro.utils.tables import render_table

TAU = 0.001

#: Dirty-user fractions swept; the floor applies to the <= 10% rows.
FRACTIONS = [0.01, 0.05, 0.10, 0.50]

#: Retweets injected per dirty user.
RETWEETS_PER_USER = 2

SMOKE = os.environ.get("UPDATE_BENCH_SMOKE") == "1"
SPEEDUP_FLOOR = 1.0 if SMOKE else 5.0
#: Denser than the shared ``BENCH_CONFIG``: maintenance economics are
#: density-driven — a full rebuild re-walks every heavy profile while
#: the delta walks only the core's, so thin synthetic corpora
#: understate the gap the paper's (dense) corpus shows.
CONFIG = (
    SynthConfig(
        n_users=500, tweets_alpha=1.2, min_tweets_per_user=2,
        max_tweets_per_user=120, seed=42,
    )
    if SMOKE
    else SynthConfig(
        n_users=2000, tweets_alpha=1.2, min_tweets_per_user=2,
        max_tweets_per_user=400, seed=42,
    )
)

#: Timing repetitions per measurement; the minimum is reported so a
#: scheduler hiccup on either side cannot fabricate or mask a speedup.
ROUNDS = 1 if SMOKE else 2


def _timed(fn, rounds=1):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def _edge_map(simgraph):
    return {(u, v): w for u, v, w in simgraph.graph.edges()}


def _inject_delta(profiles, fraction, seed):
    """Make ``fraction`` of the users dirty via fresh-tweet retweets.

    Fresh tweet ids keep the dirty tweets' retweeter sets inside the
    dirty sample itself, so the core is exactly the sampled users; a
    viral existing tweet would drag its whole retweeter set into the
    core and make every fraction measure the same region.
    """
    rng = random.Random(seed)
    users = sorted(profiles.users())
    dirty = rng.sample(users, max(1, int(len(users) * fraction)))
    next_tweet = max(profiles.tweets(), default=0) + 1
    for user in dirty:
        for _ in range(RETWEETS_PER_USER):
            profiles.add(user, next_tweet)
            next_tweet += 1
    return dirty


def _dump_json(name, rows, header):
    path = os.environ.get("UPDATE_BENCH_JSON")
    if not path:
        return
    payload = {}
    if os.path.exists(path):
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    payload[name] = [dict(zip(header, row)) for row in rows]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_delta_update_speedup(benchmark, emit):
    dataset = generate_dataset(CONFIG)
    split = temporal_split(dataset)

    def measure():
        rows = []
        floor_speedups = {}
        for backend in ("reference", "vectorized"):
            builder = SimGraphBuilder(tau=TAU, backend=backend)
            base = RetweetProfiles(split.train)
            old = builder.build(dataset.follow_graph, base)
            for fraction in FRACTIONS:
                profiles = RetweetProfiles(split.train)
                profiles.mark_clean()
                dirty = _inject_delta(
                    profiles, fraction, seed=7 + int(fraction * 1000)
                )
                # Planning (affected_region) runs inside the timed
                # region: the speedup is end-to-end, not post-planning.
                (refreshed, report), t_delta = _timed(
                    lambda: apply_delta(
                        old, dataset.follow_graph, profiles, builder
                    ),
                    rounds=ROUNDS,
                )
                full, t_full = _timed(
                    lambda: builder.build(dataset.follow_graph, profiles),
                    rounds=ROUNDS,
                )
                delta_edges = _edge_map(refreshed)
                full_edges = _edge_map(full)
                assert set(delta_edges) == set(full_edges), (
                    f"delta diverged from from-scratch at {fraction:.0%} "
                    f"on the {backend} backend"
                )
                assert all(
                    abs(w - full_edges[pair]) <= 1e-12
                    for pair, w in delta_edges.items()
                )
                speedup = t_full / t_delta if t_delta > 0 else float("inf")
                if backend == "reference" and fraction <= 0.10:
                    floor_speedups[fraction] = speedup
                rows.append([
                    backend, f"{fraction:.0%}", len(dirty),
                    report.core_size, report.fringe_size,
                    f"{t_full * 1000:.0f}", f"{t_delta * 1000:.0f}",
                    f"{speedup:.1f}x",
                ])
        return rows, floor_speedups

    rows, floor_speedups = benchmark.pedantic(measure, rounds=1, iterations=1)
    header = [
        "backend", "dirty", "dirty users", "core", "fringe",
        "from scratch (ms)", "delta (ms)", "speedup",
    ]
    emit(render_table(
        header, rows,
        title=f"Maintenance: from-scratch rebuild vs delta "
              f"({CONFIG.n_users} users)",
    ))
    _dump_json("delta_update_speedup", rows, header)
    for fraction, speedup in floor_speedups.items():
        assert speedup >= SPEEDUP_FLOOR, (
            f"delta only {speedup:.1f}x faster at {fraction:.0%} dirty "
            f"(floor is {SPEEDUP_FLOOR}x)"
        )
