"""Ablation — cold-start borrowing (paper §4.1 sketch).

Users without SimGraph edges receive nothing from the plain recommender;
the augmenter serves them their followees' recommendations.  Measures the
borrowed coverage and how many borrowed recommendations precede a real
retweet (hits the plain method cannot get by construction).
"""

from repro.core import SimGraphRecommender
from repro.core.coldstart import ColdStartAugmenter
from repro.utils.tables import render_table


def test_ablation_cold_start(benchmark, bench_dataset, bench_split, emit):
    recommender = SimGraphRecommender()
    recommender.fit(bench_dataset, bench_split.train)
    augmenter = ColdStartAugmenter(recommender, bench_dataset)

    events = bench_split.test[:400]

    def stream():
        borrowed = {}
        for event in events:
            for rec in augmenter.on_event(event):
                if augmenter.is_cold(rec.user):
                    key = (rec.user, rec.tweet)
                    if key not in borrowed:
                        borrowed[key] = rec
        return borrowed

    borrowed = benchmark.pedantic(stream, rounds=1, iterations=1)

    # Ground truth: first retweet time of cold users in the full test set.
    cold = augmenter.cold_users
    first_retweet = {}
    for event in bench_split.test:
        key = (event.user, event.tweet)
        if event.user in cold and key not in first_retweet:
            first_retweet[key] = event.time
    hits = sum(
        1
        for key, rec in borrowed.items()
        if key in first_retweet and rec.time < first_retweet[key]
    )
    emit(render_table(
        ["metric", "value"],
        [
            ["cold users", len(cold)],
            ["reachable via followees", round(augmenter.coverage(), 3)],
            ["borrowed (user, tweet) pairs", len(borrowed)],
            ["borrowed hits (plain method: 0)", hits],
        ],
        title="Ablation: cold-start borrowing (§4.1)",
    ))
    assert augmenter.coverage() > 0.5
    assert borrowed, "borrowing must produce recommendations"
