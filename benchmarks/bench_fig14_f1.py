"""Figure 14 — F1 score vs the number of daily recommendations.

Paper shape: every method except Bayes peaks at small k (~15); SimGraph
achieves the best F1 (4x GraphJet, 2x CF); GraphJet is the weakest.
Reproduced shape: F1 peaks at the small end of the sweep; SimGraph beats
CF and GraphJet at every k.  (Deviation noted in EXPERIMENTS.md: the
uniform-trust Bayes baseline is more precise on the synthetic corpus and
posts the highest F1.)
"""

from repro.eval import evaluate_at_k
from repro.utils.tables import render_table


def test_fig14_f1_scores(benchmark, bench_dataset, sweep_report,
                         replay_results, emit):
    benchmark.pedantic(
        evaluate_at_k,
        args=(replay_results["Bayes"], 30, bench_dataset.popularity),
        rounds=1,
        iterations=1,
    )
    emit(sweep_report.render("f1", "Figure 14: F1 score", precision=5))
    f1 = {
        name: [m.f1 for m in metrics]
        for name, metrics in sweep_report.series.items()
    }
    for i in range(len(sweep_report.k_values)):
        assert f1["SimGraph"][i] > f1["CF"][i]
        assert f1["SimGraph"][i] > f1["GraphJet"][i]
        assert f1["GraphJet"][i] == min(
            f1[name][i] for name in f1
        )
    # F1 peaks at the small-k end for SimGraph (paper: ~15).
    peak_k = sweep_report.best_k("f1", "SimGraph")
    assert peak_k <= 30
