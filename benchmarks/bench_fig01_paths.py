"""Figure 1 — distribution of smallest paths in the follow graph.

Paper shape: unimodal around distance 3-4 (avg 3.7), support up to the
diameter (15).
"""

from repro.graph.metrics import path_length_sample
from repro.utils.tables import render_table


def test_fig01_smallest_path_distribution(benchmark, bench_dataset, emit):
    counts = benchmark.pedantic(
        path_length_sample,
        args=(bench_dataset.follow_graph,),
        kwargs={"sample_size": 150, "seed": 0},
        rounds=1,
        iterations=1,
    )
    rows = sorted(counts.items())
    emit(render_table(
        ["smallest path", "number of nodes"], rows,
        title="Figure 1: Twitter smallest paths distribution",
    ))
    total = sum(counts.values())
    mode = max(counts, key=counts.get)
    # Unimodal mass concentrated at short distances.
    assert 2 <= mode <= 4
    near = sum(c for d, c in counts.items() if d <= 4)
    assert near > 0.8 * total
