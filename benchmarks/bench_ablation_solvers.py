"""Ablation — linear-system solvers (paper §5.2-5.3).

Solves the same propagation system with Jacobi, Gauss-Seidel, SOR and a
direct sparse LU, confirming §5.3's convergence claims: the system is
strictly diagonally dominant, all stationary methods agree with the
direct solution, and Gauss-Seidel needs no more sweeps than Jacobi.
"""

from repro.core import LinearSystem
from repro.utils.tables import render_table


def test_ablation_solver_comparison(benchmark, bench_split, bench_simgraph,
                                    emit):
    system = LinearSystem(bench_simgraph)
    assert system.is_diagonally_dominant()

    from collections import Counter

    popularity = Counter(r.tweet for r in bench_split.train)
    tweet, _ = popularity.most_common(1)[0]
    seeds = {r.user for r in bench_split.train if r.tweet == tweet}

    benchmark.pedantic(
        system.solve_jacobi, args=(seeds,), rounds=1, iterations=1
    )

    results = {
        "jacobi": system.solve_jacobi(seeds),
        "gauss-seidel": system.solve_gauss_seidel(seeds),
        "sor (w=1.2)": system.solve_sor(seeds, omega=1.2),
        "direct LU": system.solve_direct(seeds),
    }
    rows = [
        [name, r.iterations, f"{r.residual:.2e}",
         len(r.probabilities)]
        for name, r in results.items()
    ]
    emit(render_table(
        ["solver", "iterations", "residual", "non-zero users"],
        rows,
        title=(
            "Ablation: solvers on one propagation system "
            f"(n={system.size}, ||A||={system.iteration_norm():.3f}, "
            f"rho~{system.spectral_radius_estimate():.3f})"
        ),
    ))
    direct = results["direct LU"].probabilities
    for name in ("jacobi", "gauss-seidel", "sor (w=1.2)"):
        solved = results[name].probabilities
        for user in set(direct) | set(solved):
            assert abs(
                solved.get(user, 0.0) - direct.get(user, 0.0)
            ) < 1e-6
    assert results["gauss-seidel"].iterations <= results["jacobi"].iterations
    # The paper measures ||A|| = 0.91 on their data; ours must also be < 1.
    assert system.iteration_norm() < 1.0
