"""Figure 16 — hits on the last 5% under four SimGraph update strategies.

Paper shape: *from scratch* (full rebuild at 95%) gives the best hits;
*crossfold* (2-hop reconstruction over the previous SimGraph) tracks it
almost perfectly at a fraction of the cost; *old SimGraph* and *SimGraph
updated* (weights only) coincide — topology matters more than weights.
"""

import time

from repro.core import RetweetProfiles, SimGraphBuilder, SimGraphRecommender
from repro.core.update import STRATEGIES, apply_strategy
from repro.eval import evaluate_sweep, run_replay
from repro.utils.tables import render_table

K = 30


def test_fig16_update_strategies(benchmark, bench_dataset, bench_split,
                                 bench_targets, emit):
    mid = bench_split.slice_test(0.90, 0.95)
    last = bench_split.slice_test(0.95, 1.0)
    builder = SimGraphBuilder(tau=0.001)
    profiles = RetweetProfiles(bench_split.train)
    old = builder.build(bench_dataset.follow_graph, profiles)
    targets = bench_targets.all_users

    def run_strategy(name):
        t0 = time.perf_counter()
        graph = apply_strategy(
            name, old, bench_dataset.follow_graph, bench_split.train, mid,
            builder=builder,
        )
        update_cost = time.perf_counter() - t0
        recommender = SimGraphRecommender(simgraph=graph)
        recommender.fit(bench_dataset, bench_split.train + mid, targets)
        result = run_replay(
            recommender, bench_dataset, bench_split.train + mid, last,
            targets, fitted=True,
        )
        metrics = evaluate_sweep(result, [K], bench_dataset.popularity)[0]
        return graph, metrics, update_cost

    # Benchmark the paper's headline: crossfold is the cheap good update.
    benchmark.pedantic(
        apply_strategy,
        args=("crossfold", old, bench_dataset.follow_graph,
              bench_split.train, mid),
        kwargs={"builder": builder},
        rounds=1,
        iterations=1,
    )

    rows = []
    hits = {}
    costs = {}
    for name in STRATEGIES:
        graph, metrics, update_cost = run_strategy(name)
        hits[name] = metrics.hits
        costs[name] = update_cost
        rows.append([name, graph.edge_count, metrics.hits,
                     round(update_cost, 3)])
    emit(render_table(
        ["strategy", "edges", f"hits@{K}", "update cost (s)"], rows,
        title="Figure 16: hits on the last 5% per update strategy",
    ))
    # Crossfold tracks the full rebuild (within 15%).
    assert hits["crossfold"] >= 0.85 * hits["from scratch"]
    # Delta is from-scratch-exact (same edges, weights within round-off),
    # so its hits must coincide — at a fraction of the update cost.
    assert hits["delta"] == hits["from scratch"]
    assert costs["delta"] < costs["from scratch"]
    # Stale topology with refreshed weights ~= stale graph (paper's
    # "surprisingly ... almost the exact same results").
    assert abs(hits["SimGraph updated"] - hits["old SimGraph"]) <= max(
        5, 0.15 * hits["old SimGraph"]
    )
    # No strategy beats the rebuild by a wide margin.
    best = max(hits.values())
    assert hits["from scratch"] >= 0.85 * best
