"""Observability overhead — instrumented hot paths vs the no-op default.

Every engine in the library carries ``repro.obs`` instrumentation
unconditionally; the design promise is that it costs *nothing* unless a
real :class:`MetricsRegistry` is passed (the default is the shared
:data:`NULL` no-op registry, whose metric calls are empty methods on
reusable singletons).

This bench runs the heaviest workload of the suite — a vectorized
SimGraph build on the largest ``bench_backend_speedup`` corpus followed
by a propagation sweep over the most popular tweets — once per registry
variant, best-of-``ROUNDS`` to suppress scheduler noise, and asserts the
fully-recording registry stays within 5% of the no-op wall clock.
"""

from __future__ import annotations

import time

from repro.core import RetweetProfiles, SimGraphBuilder
from repro.core.propagation import PropagationEngine
from repro.obs import NULL, MetricsRegistry
from repro.synth import SynthConfig, generate_dataset
from repro.utils.tables import render_table

#: The "large" corpus of bench_backend_speedup.py.
LARGE_CONFIG = SynthConfig(
    n_users=4000, tweets_alpha=1.2, min_tweets_per_user=2,
    max_tweets_per_user=250, seed=42,
)

MAX_INFLUENCERS = 6
TAU = 0.001
PROPAGATIONS = 300
ROUNDS = 3
OVERHEAD_CEILING = 0.05


def workload(dataset, profiles, seed_sets, metrics) -> float:
    """One full build + propagation pass; returns wall-clock seconds."""
    start = time.perf_counter()
    builder = SimGraphBuilder(
        tau=TAU, max_influencers=MAX_INFLUENCERS, backend="vectorized",
        metrics=metrics,
    )
    simgraph = builder.build(dataset.follow_graph, profiles)
    engine = PropagationEngine(simgraph, metrics=metrics)
    for seeds in seed_sets:
        engine.propagate(seeds, popularity=len(seeds))
    return time.perf_counter() - start


def test_obs_overhead(benchmark, emit):
    dataset = generate_dataset(LARGE_CONFIG)
    profiles = RetweetProfiles(dataset.retweets())
    tweets = sorted(
        profiles.tweets(), key=profiles.popularity, reverse=True
    )[:PROPAGATIONS]
    seed_sets = [profiles.retweeters(t) for t in tweets]

    def measure():
        timings = {"off (NULL)": [], "on (MetricsRegistry)": []}
        registries = []
        for _ in range(ROUNDS):
            timings["off (NULL)"].append(
                workload(dataset, profiles, seed_sets, NULL)
            )
            registry = MetricsRegistry()
            timings["on (MetricsRegistry)"].append(
                workload(dataset, profiles, seed_sets, registry)
            )
            registries.append(registry)
        return timings, registries[-1]

    timings, registry = benchmark.pedantic(measure, rounds=1, iterations=1)
    t_off = min(timings["off (NULL)"])
    t_on = min(timings["on (MetricsRegistry)"])
    overhead = t_on / t_off - 1.0
    emit(render_table(
        ["registry", "best of 3 (ms)", "overhead"],
        [
            ["off (NULL)", f"{t_off * 1000:.0f}", "baseline"],
            ["on (MetricsRegistry)", f"{t_on * 1000:.0f}",
             f"{overhead:+.1%}"],
        ],
        title=f"obs overhead: {LARGE_CONFIG.n_users} users, "
              f"{PROPAGATIONS} propagations",
    ))
    # The enabled registry must have actually recorded the workload.
    snapshot = registry.snapshot()
    assert snapshot["counters"]["propagation.runs"] == PROPAGATIONS
    assert snapshot["counters"]["simgraph.edges_kept"] > 0
    assert overhead < OVERHEAD_CEILING, (
        f"metrics overhead {overhead:.1%} exceeds the "
        f"{OVERHEAD_CEILING:.0%} acceptance ceiling"
    )
