"""Figure 13 — share of each competitor's hits also found by SimGraph.

Paper shape: ratios are fairly stable in k (within ~10%); Bayes shares the
most (>50%) because SimGraph also captures its unpopular local hits;
GraphJet's popular-only hits overlap substantially too; CF's overlap rises
with k as it shifts toward popular content.
"""

from repro.eval import overlap_ratio
from repro.utils.tables import render_table


def test_fig13_hits_shared_with_simgraph(benchmark, sweep_report, emit):
    def overlap_rows():
        return sweep_report.overlap_with("SimGraph")

    rows = benchmark.pedantic(overlap_rows, rounds=1, iterations=1)
    emit(render_table(
        ["k"] + sweep_report.methods, rows,
        title="Figure 13: ratio of hits in common with SimGraph",
    ))
    methods = sweep_report.methods
    bayes_col = methods.index("Bayes") + 1
    for row in rows:
        # Bayes shares the majority of its hits with SimGraph (paper >50%).
        assert row[bayes_col] > 0.4
    # Self-overlap sanity.
    sim_col = methods.index("SimGraph") + 1
    assert all(row[sim_col] == 1.0 for row in rows)
