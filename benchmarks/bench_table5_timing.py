"""Table 5 — initialization and recommendation time of the four methods.

Paper values (2.2M users, 70-core Java): CF init 8,583 ms/user (39.4h
total) but 0.5 ms/message; Bayes init 10 ms/user but 975 ms/message
(51.3h total, the most expensive); SimGraph 311 ms/user init + 38
ms/message (3.4h total, the cheapest); GraphJet no init, 14 ms/user
query.

Reproduced claims (hardware-independent orderings):

* CF's per-user initialization dominates every other method's — the
  quadratic all-pairs similarity scan;
* SimGraph's 2-hop-restricted init is far cheaper per user than CF's;
* GraphJet needs essentially no initialization;
* CF is the cheapest per streamed message (pre-computed similarities).

Absolute values are reported for reference; they are Python on one core
versus the paper's Java on 70 cores.
"""

from conftest import make_methods
from repro.eval.timing import time_method
from repro.utils.tables import render_table

MAX_EVENTS = 400


def test_table5_processing_time(benchmark, bench_dataset, bench_split,
                                bench_targets, emit):
    def measure():
        reports = {}
        for method in make_methods():
            reports[method.name] = time_method(
                method,
                bench_dataset,
                bench_split.train,
                bench_split.test,
                bench_targets.all_users,
                max_events=MAX_EVENTS,
            )
        return reports

    reports = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(render_table(
        ["method", "init/user (ms)", "init total (s)",
         "per message (ms)", "stream (s)", "total (s)"],
        [r.row() for r in reports.values()],
        title=f"Table 5: processing time ({MAX_EVENTS} streamed events)",
    ))
    # CF pays the highest per-user initialization (the all-pairs scan);
    # the gap is 27x at paper scale, smaller here because profile sets
    # are tiny, but the ordering is what the paper claims.
    assert reports["CF"].init_per_user_ms > 2 * (
        reports["SimGraph"].init_per_user_ms
    )
    assert reports["CF"].init_per_user_ms > 10 * (
        reports["Bayes"].init_per_user_ms
    )
    # GraphJet has (almost) no initialization.
    assert reports["GraphJet"].init_seconds < 0.2 * reports["CF"].init_seconds
    # Per-message ordering (paper: Bayes 975ms >> SimGraph 38ms >> CF
    # 0.5ms): Bayes pays the most, CF the least.
    assert reports["Bayes"].per_event_ms > reports["SimGraph"].per_event_ms
    assert reports["CF"].per_event_ms <= min(
        reports["SimGraph"].per_event_ms,
        reports["Bayes"].per_event_ms,
    )
    # Bayes is the most expensive method end to end (paper: 51.3h).
    assert reports["Bayes"].total_seconds >= max(
        r.total_seconds for r in reports.values()
    ) * 0.999
