"""Figure 7 — average delivered recommendations per day and user vs k.

Paper shape: CF grows almost linearly with k (up to ~140/day); Bayes,
GraphJet and SimGraph saturate between 50 and 70 because thresholds and
graph locality cap their candidate pools.  Reproduced shape: CF grows
essentially linearly while SimGraph and Bayes saturate well below it.
(Deviation noted in EXPERIMENTS.md: on the denser synthetic engagement
graph, GraphJet's periodic batches also keep growing with k.)
"""

from conftest import K_VALUES
from repro.eval import evaluate_at_k
from repro.utils.tables import render_table


def test_fig07_recall_capacity(benchmark, bench_dataset, sweep_report, replay_results, emit):
    benchmark.pedantic(
        evaluate_at_k,
        args=(replay_results["SimGraph"], 30, bench_dataset.popularity),
        rounds=1,
        iterations=1,
    )
    emit(sweep_report.render(
        "recs_per_user_day",
        "Figure 7: recall capacity (recommendations / day / user)",
        precision=2,
    ))
    series = {
        name: [m.recs_per_user_day for m in metrics]
        for name, metrics in sweep_report.series.items()
    }
    # CF delivers more than the propagation-bounded methods at large k.
    assert series["CF"][-1] > series["SimGraph"][-1]
    assert series["CF"][-1] > series["Bayes"][-1]
    cf_growth = series["CF"][-1] / max(series["CF"][0], 1e-9)
    sim_growth = series["SimGraph"][-1] / max(series["SimGraph"][0], 1e-9)
    bayes_growth = series["Bayes"][-1] / max(series["Bayes"][0], 1e-9)
    # Threshold-bounded methods saturate; CF keeps growing.
    assert sim_growth < cf_growth
    assert bayes_growth < cf_growth
