"""Table 3 — network distance vs position in the top-N similarity ranking.

Paper values: the rank-1 most similar user averages distance 1.65 (53% at
distance 1) and the average distance grows monotonically down the ranking
(rank 5: 1.99).  Reproduced shape: rank-1 closest, distance increasing
with rank.
"""

from repro.analysis.homophily import sample_active_users, top_rank_distances
from repro.utils.tables import render_table


def test_table3_rank_vs_distance(
    benchmark, bench_dataset, bench_profiles, emit
):
    users = sample_active_users(
        bench_dataset, sample_size=150, min_retweets=5, seed=0
    )
    rows = benchmark.pedantic(
        top_rank_distances,
        args=(bench_dataset, bench_profiles, users),
        kwargs={"top_n": 5},
        rounds=1,
        iterations=1,
    )
    distances = sorted({d for r in rows for d in r.distance_percentages})
    table = []
    for r in rows:
        cells = [r.rank, round(r.average_distance, 2)]
        cells += [round(r.distance_percentages.get(d, 0.0), 2)
                  for d in distances]
        table.append(cells)
    emit(render_table(
        ["Rank", "Avg Distance"] + [str(d) for d in distances],
        table,
        title="Table 3: distance vs position in the Top-5 ranking",
    ))
    # Monotone shape: the most similar user is the closest one.
    assert rows[0].average_distance <= rows[-1].average_distance
    # Rank 1 sits at distance 1 more often than rank 5 does.
    assert rows[0].distance_percentages.get(1, 0.0) >= (
        rows[-1].distance_percentages.get(1, 0.0)
    )
