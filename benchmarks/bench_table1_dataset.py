"""Table 1 — main features of the dataset.

Paper values (2.2M-user crawl): 2.2M nodes, 325.5M edges, 3,002M tweets,
avg out/in degree 57.8/69.4, diameter 15, avg path 3.7.  Reproduced shape:
heavy-tailed degrees, small diameter, short mean path, at synthetic scale.
"""

from repro.data.stats import compute_dataset_stats
from repro.utils.tables import render_table


def test_table1_dataset_features(benchmark, bench_dataset, emit):
    stats = benchmark.pedantic(
        compute_dataset_stats,
        args=(bench_dataset,),
        kwargs={"path_sample_size": 120, "seed": 0},
        rounds=1,
        iterations=1,
    )
    emit(render_table(
        ["feature", "value"], stats.table1_rows(),
        title="Table 1: main features of the dataset",
    ))
    graph = stats.graph
    # Reproduction checks: small world + heavy tails.
    assert graph.mean_path_length < 6.0
    assert graph.diameter <= 20
    assert graph.max_out_degree > 4 * graph.mean_out_degree
    assert stats.mean_tweets_per_user > 1.0
