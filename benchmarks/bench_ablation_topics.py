"""Ablation — topic-merged profiles (paper §7 future work).

Merging tweets into "topic tweets" must densify the SimGraph edges of
low-activity users — the paper's predicted enhancement for small users —
while leaving the construction machinery untouched.
"""

from repro.core import SimGraphBuilder, merge_by_label, topic_profiles
from repro.utils.tables import render_table


def test_ablation_topic_merging(benchmark, bench_dataset, bench_split,
                                bench_profiles, bench_simgraph, emit):
    assignment = merge_by_label(bench_dataset)
    merged_profiles = benchmark.pedantic(
        topic_profiles,
        args=(bench_split.train, assignment),
        rounds=1,
        iterations=1,
    )
    merged_graph = SimGraphBuilder(tau=0.001).build(
        bench_dataset.follow_graph, merged_profiles
    )

    def small_user_degree(graph):
        thin = [
            u for u in graph.users()
            if bench_profiles.profile_size(u) < 5
        ]
        if not thin:
            return 0.0
        return sum(graph.influencer_count(u) for u in thin) / len(thin)

    raw_degree = small_user_degree(bench_simgraph)
    merged_degree = small_user_degree(merged_graph)
    emit(render_table(
        ["profiles", "nodes", "edges", "mean |F_u| of small users"],
        [
            ["raw tweets", bench_simgraph.node_count,
             bench_simgraph.edge_count, round(raw_degree, 2)],
            ["topic tweets", merged_graph.node_count,
             merged_graph.edge_count, round(merged_degree, 2)],
        ],
        title=(
            f"Ablation: topic merging ({assignment.topic_count} items "
            f"from {len(assignment.topic_of)} tweets)"
        ),
    ))
    # Small users gain influencers and coverage grows.
    assert merged_degree > raw_degree
    assert merged_graph.node_count >= bench_simgraph.node_count
