"""Figure 9 — hits for the low-activity user stratum vs k.

Paper shape: all methods plateau quickly (small users produce few test
retweets, bounding possible hits around ~700 at their scale); GraphJet is
especially weak because low-activity users have little recent engagement
for its walks to start from.
"""

from conftest import K_VALUES
from repro.data.models import ActivityClass
from repro.eval import evaluate_sweep
from repro.utils.tables import render_table


def test_fig09_hits_low_activity(benchmark, bench_dataset, bench_targets,
                                 replay_results, emit):
    stratum = bench_targets.stratum(ActivityClass.LOW)

    def sweep():
        return {
            name: evaluate_sweep(result, K_VALUES,
                                 bench_dataset.popularity, users=stratum)
            for name, result in replay_results.items()
        }

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [k] + [series[name][i].hits for name in series]
        for i, k in enumerate(K_VALUES)
    ]
    emit(render_table(["k"] + list(series), rows,
                      title="Figure 9: hits, low-activity stratum",
                      precision=0))
    # Hits saturate: the last doubling of k barely adds hits.
    for name in ("SimGraph", "Bayes"):
        assert series[name][-1].hits <= series[name][-3].hits * 1.5 + 5
    # GraphJet's cold-start weakness on small users.
    assert series["GraphJet"][-1].hits <= series["SimGraph"][-1].hits
