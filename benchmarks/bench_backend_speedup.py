"""Backend speedup — vectorized sparse builds vs the reference scan.

The vectorized backend (``repro.core.simmatrix``) materializes the
user x tweet incidence as a CSR matrix and computes every Def. 3.1
similarity of a SimGraph build through one complex-valued sparse
product per source chunk, masked by the 2-hop reachability matrix.
The reference backend walks the inverted index user by user.

Both must produce *identical* edge sets (the differential suite pins
this down to 1e-12); this bench records the wall-clock gap on three
synthetic corpora and asserts the vectorized build is at least 3x
faster on the largest, paper-sparsity-matched configuration.

Also timed: the multi-RHS direct solve (``solve_many_direct``) against
a loop of single ``solve_direct`` calls on the same seed sets.
"""

from __future__ import annotations

import time

from conftest import BENCH_CONFIG
from repro.core import RetweetProfiles, SimGraphBuilder
from repro.core.linear import LinearSystem
from repro.synth import SynthConfig, generate_dataset
from repro.utils.tables import render_table

#: Small / medium / large corpora.  All use the influencer cap that
#: matches the paper's SimGraph sparsity (Table 4: mean out-degree 5.9);
#: without the cap the shared DiGraph-insertion cost of ~700k edges
#: dominates both backends and hides the scoring gap.
SPEEDUP_CONFIGS = [
    ("small", SynthConfig(
        n_users=800, tweets_alpha=1.2, min_tweets_per_user=2,
        max_tweets_per_user=250, seed=42,
    )),
    ("medium", BENCH_CONFIG),
    ("large", SynthConfig(
        n_users=4000, tweets_alpha=1.2, min_tweets_per_user=2,
        max_tweets_per_user=250, seed=42,
    )),
]

MAX_INFLUENCERS = 6
TAU = 0.001
SOLVE_TWEETS = 80


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_vectorized_build_speedup(benchmark, emit):
    def measure():
        rows = []
        large_speedup = 0.0
        for label, config in SPEEDUP_CONFIGS:
            dataset = generate_dataset(config)
            profiles = RetweetProfiles(dataset.retweets())
            reference, t_ref = _timed(
                lambda: SimGraphBuilder(
                    tau=TAU, max_influencers=MAX_INFLUENCERS
                ).build(dataset.follow_graph, profiles)
            )
            vectorized, t_vec = _timed(
                lambda: SimGraphBuilder(
                    tau=TAU, max_influencers=MAX_INFLUENCERS,
                    backend="vectorized",
                ).build(dataset.follow_graph, profiles)
            )
            ref_edges = {(u, v) for u, v, _ in reference.graph.edges()}
            vec_edges = {(u, v) for u, v, _ in vectorized.graph.edges()}
            assert vec_edges == ref_edges, f"backend divergence on {label}"
            speedup = t_ref / t_vec if t_vec > 0 else float("inf")
            rows.append([
                label, config.n_users, reference.edge_count,
                f"{t_ref * 1000:.0f}", f"{t_vec * 1000:.0f}",
                f"{speedup:.1f}x",
            ])
            if label == "large":
                large_speedup = speedup
        return rows, large_speedup

    rows, large_speedup = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(render_table(
        ["corpus", "users", "edges", "reference (ms)", "vectorized (ms)",
         "speedup"],
        rows,
        title=f"SimGraph build: reference vs vectorized (tau={TAU}, "
              f"cap={MAX_INFLUENCERS})",
    ))
    assert large_speedup >= 3.0, (
        f"vectorized build only {large_speedup:.1f}x faster on the "
        "largest corpus (acceptance floor is 3x)"
    )


def test_batch_solve_speedup(benchmark, bench_dataset, bench_profiles,
                             sparse_simgraph, emit):
    """Multi-RHS block solve vs a loop of single direct solves."""
    tweets = sorted(
        bench_profiles.tweets(),
        key=bench_profiles.popularity,
        reverse=True,
    )[:SOLVE_TWEETS]
    seed_sets = [bench_profiles.retweeters(t) for t in tweets]
    system = LinearSystem(sparse_simgraph)

    def measure():
        singles, t_loop = _timed(
            lambda: [system.solve_direct(s).probabilities for s in seed_sets]
        )
        batch, t_batch = _timed(lambda: system.solve_many_direct(seed_sets))
        return singles, t_loop, batch, t_batch

    singles, t_loop, batch, t_batch = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    for single, solved in zip(singles, batch):
        assert set(single) == set(solved)
        for user, p in single.items():
            assert abs(solved[user] - p) < 1e-9
    emit(render_table(
        ["path", "seed sets", "time (ms)"],
        [
            ["solve_direct loop", len(seed_sets), f"{t_loop * 1000:.0f}"],
            ["solve_many_direct", len(seed_sets), f"{t_batch * 1000:.0f}"],
        ],
        title="Direct solve: loop vs multi-RHS block solve",
    ))
    # The batch path must never lose to the loop by more than noise.
    assert t_batch <= t_loop * 1.5
