"""Figure 11 — hits for the intensive user stratum vs k.

Paper shape: the intensive stratum contributes the largest hit counts
(more test retweets -> more opportunities), with the same method ordering
as the full population.
"""

from conftest import K_VALUES
from repro.data.models import ActivityClass
from repro.eval import evaluate_sweep
from repro.utils.tables import render_table


def test_fig11_hits_intensive_activity(benchmark, bench_dataset,
                                       bench_targets, replay_results, emit):
    strata = {
        name: bench_targets.stratum(name) for name in ActivityClass.ALL
    }

    def sweep():
        return {
            name: evaluate_sweep(result, K_VALUES,
                                 bench_dataset.popularity,
                                 users=strata[ActivityClass.INTENSIVE])
            for name, result in replay_results.items()
        }

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [k] + [series[name][i].hits for name in series]
        for i, k in enumerate(K_VALUES)
    ]
    emit(render_table(["k"] + list(series), rows,
                      title="Figure 11: hits, intensive stratum",
                      precision=0))
    # The intensive stratum dominates the other strata for SimGraph.
    from repro.eval import evaluate_at_k

    result = replay_results["SimGraph"]
    big = evaluate_at_k(result, 30, bench_dataset.popularity,
                        users=strata[ActivityClass.INTENSIVE]).hits
    low = evaluate_at_k(result, 30, bench_dataset.popularity,
                        users=strata[ActivityClass.LOW]).hits
    assert big > low
    for i in range(len(K_VALUES)):
        assert series["SimGraph"][i].hits > series["GraphJet"][i].hits
