"""Figure 15 — average advance time between recommendation and retweet.

Paper shape: GraphJet predicts furthest ahead (~22h, stable) thanks to its
popularity bias; Bayes and SimGraph need more signal and land around 17h;
CF's curve tracks the popularity of what it recommends.
"""

from repro.eval import evaluate_at_k
from repro.utils.tables import render_table


def test_fig15_advance_time(benchmark, bench_dataset, sweep_report,
                            replay_results, emit):
    benchmark.pedantic(
        evaluate_at_k,
        args=(replay_results["SimGraph"], 100, bench_dataset.popularity),
        rounds=1,
        iterations=1,
    )
    rows = [
        [k] + [
            round(sweep_report.series[name][i].mean_advance_seconds / 3600.0, 2)
            for name in sweep_report.methods
        ]
        for i, k in enumerate(sweep_report.k_values)
    ]
    emit(render_table(
        ["k"] + [f"{m} (h)" for m in sweep_report.methods], rows,
        title="Figure 15: average advance time before the real retweet",
    ))
    at30 = {
        name: sweep_report.series[name][2].mean_advance_seconds
        for name in sweep_report.methods
    }
    # Every method predicts hours ahead; GraphJet leads (paper ~22h).
    assert all(v > 3600.0 for v in at30.values())
    assert at30["GraphJet"] >= max(
        at30["SimGraph"], at30["Bayes"]
    )
