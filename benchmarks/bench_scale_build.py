"""Paper-scale corpus build + snapshot persistence (ROADMAP item 1).

The paper's crawl is 2.2M users; the columnar stack exists so a corpus
of that order fits on one machine.  This bench exercises the whole
scale path per tier:

1. **chunked synthesis** — :class:`~repro.synth.stream.ChunkedGenerator`
   streams the retweet log in time-ordered windows; the full corpus is
   assembled into a :class:`~repro.data.columnar.ColumnarDataset`;
2. **graph snapshot** — an :class:`~repro.core.csr.ArraySimGraph` over
   the corpus's follow CSR (weights ``1/log(1 + in_degree)``, a
   structural stand-in with the corpus's exact topology: similarity
   *semantics* are covered by the tier-1 differential suites, while
   this bench measures persistence at sizes where a pairwise similarity
   build is off the table) is saved as a binary v2 snapshot;
3. **mmap load** — ``load_simgraph(..., mmap=True)`` must come back in
   under 100 ms regardless of tier, be array-identical to the eager
   load, and drive one batched ``propagate_many`` on the CSR backend to
   the same fixpoints.

Peak RSS (``ru_maxrss``) is recorded per tier — it is cumulative over
the process, so tiers run smallest-first and the figure to watch is the
largest tier's.

Env knobs (used by the CI scale-smoke step):

* ``SCALE_BENCH_SMOKE=1`` — one small tier, CI-sized;
* ``SCALE_BENCH_FULL=1`` — add the 1M-user tier (several minutes);
* ``SCALE_BENCH_JSON=path`` — dump measured rows as JSON for archival;
* ``SCALE_BENCH_RSS_MB=n`` — assert peak RSS stays under ``n`` MB.
"""

from __future__ import annotations

import json
import os
import resource
import time

import numpy as np

from repro.core.csr import ArraySimGraph
from repro.core.persistence import load_simgraph, save_simgraph
from repro.core.propagation_csr import make_propagation_engine
from repro.synth import ChunkedGenerator, SynthConfig
from repro.synth.config import DAY
from repro.utils.tables import render_table

SMOKE = os.environ.get("SCALE_BENCH_SMOKE") == "1"
FULL = os.environ.get("SCALE_BENCH_FULL") == "1"

#: Per-user activity is capped harder as tiers grow so the cascade loop
#: stays minutes, not hours; the arrays are what is being measured.
TIERS = (
    [(20_000, 10, 2.0)]
    if SMOKE
    else ([(100_000, 8, 2.0), (1_000_000, 4, 1.0)] if FULL
          else [(100_000, 8, 2.0)])
)

MMAP_LOAD_CEILING_S = 0.100


def _peak_rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _standin_simgraph(dataset, tau: float = 0.001) -> ArraySimGraph:
    """Follow-topology graph with ``1/log(1 + in_degree)`` weights."""
    n = dataset.user_count
    targets = dataset.follow_targets
    in_degree = np.bincount(targets, minlength=n).astype(np.float64)
    weights = 1.0 / np.log1p(in_degree[targets] + 1.0)
    return ArraySimGraph(
        users=dataset.user_ids,
        indptr=dataset.follow_indptr,
        indices=targets,
        weights=weights,
        tau=tau,
    )


def _dump_json(name, rows, header):
    path = os.environ.get("SCALE_BENCH_JSON")
    if not path:
        return
    payload = {}
    if os.path.exists(path):
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    payload[name] = [dict(zip(header, row)) for row in rows]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _run_tier(n_users, max_tweets, discovery, tmp_path):
    config = SynthConfig(
        n_users=n_users,
        max_tweets_per_user=max_tweets,
        discovery_mean=discovery,
        seed=42,
    )
    started = time.perf_counter()
    generator = ChunkedGenerator(config, window=DAY)
    dataset = generator.to_columnar()
    corpus_s = time.perf_counter() - started

    simgraph = _standin_simgraph(dataset)
    path = tmp_path / f"scale_{n_users}.simgraph"
    started = time.perf_counter()
    save_simgraph(simgraph, path, format=2)
    save_s = time.perf_counter() - started

    started = time.perf_counter()
    mapped = load_simgraph(path, mmap=True)
    mmap_s = time.perf_counter() - started
    assert mmap_s < MMAP_LOAD_CEILING_S, (
        f"mmap load took {mmap_s * 1000:.1f}ms at {n_users} users "
        f"(ceiling {MMAP_LOAD_CEILING_S * 1000:.0f}ms)"
    )

    started = time.perf_counter()
    eager = load_simgraph(path, mmap=False)
    eager_s = time.perf_counter() - started

    # Differential: the two loads must be array-identical and propagate
    # identically through the CSR engine.
    for a, b in zip(mapped.arrays(), eager.arrays()):
        assert np.array_equal(a, b)
    seeds = [
        dataset.retweeters_array(int(t)).tolist()
        for t in dataset.tweets_with_min_retweets(2)
    ][:16]
    if seeds:
        results_m = make_propagation_engine(
            mapped, prop_backend="csr", csr=mapped.csr()
        ).propagate_many(seeds)
        results_e = make_propagation_engine(
            eager, prop_backend="csr", csr=eager.csr()
        ).propagate_many(seeds)
        for rm, re_ in zip(results_m, results_e):
            assert rm.probabilities == re_.probabilities

    return [
        n_users,
        dataset.tweet_count,
        dataset.retweet_count,
        simgraph.edge_count,
        f"{corpus_s:.1f}",
        f"{save_s * 1000:.0f}",
        f"{mmap_s * 1000:.1f}",
        f"{eager_s * 1000:.0f}",
        f"{os.path.getsize(path) / 1e6:.1f}",
        f"{_peak_rss_mb():.0f}",
    ]


def test_scale_build_and_snapshot(benchmark, emit, tmp_path):
    def measure():
        return [
            _run_tier(n, m, d, tmp_path)
            for n, m, d in sorted(TIERS)
        ]

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    header = [
        "users", "tweets", "retweets", "edges", "corpus (s)", "save (ms)",
        "mmap load (ms)", "eager load (ms)", "file (MB)", "peak RSS (MB)",
    ]
    emit(render_table(
        header, rows,
        title="Scale: chunked synthesis -> v2 snapshot -> mmap load",
    ))
    _dump_json("scale_build", rows, header)
    ceiling = os.environ.get("SCALE_BENCH_RSS_MB")
    if ceiling:
        peak = _peak_rss_mb()
        assert peak <= float(ceiling), (
            f"peak RSS {peak:.0f}MB exceeds ceiling {ceiling}MB"
        )
