"""Ablation — information-bubble escape (paper §7 future work).

Identifies bubbles in the SimGraph backbone, measures the locality of
SimGraph recommendations, and sweeps the escape weight: the top-ranked
slice must become monotonically less local as the weight grows.
"""

from repro.analysis import (
    BubbleEscapeReranker,
    identify_bubbles,
    recommendation_locality,
)
from repro.graph import modularity
from repro.utils.tables import render_table

WEIGHTS = [0.0, 0.3, 0.7, 1.0]


def test_ablation_bubble_escape(benchmark, bench_dataset, bench_split,
                                bench_simgraph, replay_results, emit):
    bubbles = benchmark.pedantic(
        identify_bubbles, args=(bench_simgraph,), kwargs={"seed": 0},
        rounds=1, iterations=1,
    )
    q = modularity(bench_simgraph.graph, bubbles.labels)
    recommendations = replay_results["SimGraph"].candidates
    audience = {}
    for event in bench_split.test:
        audience.setdefault(event.tweet, set()).add(event.user)
    overall = recommendation_locality(recommendations, bubbles, audience)

    rows = []
    localities = []
    for weight in WEIGHTS:
        reranker = BubbleEscapeReranker(bubbles, escape_weight=weight)
        reranked = reranker.rerank(list(recommendations), audience)
        top = reranked[: max(len(reranked) // 10, 1)]
        locality = recommendation_locality(top, bubbles, audience)
        localities.append(locality)
        rows.append([weight, round(locality, 3)])
    emit(render_table(
        ["escape weight", "top-decile locality"], rows,
        title=(
            f"Ablation: bubble escape ({bubbles.bubble_count} bubbles, "
            f"modularity {q:.3f}; overall locality {overall:.2f})"
        ),
    ))
    assert bubbles.bubble_count >= 2
    # Escaping reduces the locality of what gets ranked first.
    assert localities[-1] < localities[0]
    assert all(
        later <= earlier + 0.02
        for earlier, later in zip(localities, localities[1:])
    )
