"""Shared state for the benchmark suite.

Every expensive artefact — the calibrated synthetic corpus, the fitted
methods, the four replay results and the metric sweep — is computed once
per pytest session and shared across benchmark files, so each bench only
pays for the operation it actually measures.

The corpus here is the *evaluation-scale* configuration: richer per-user
activity than the library default (profiles comparable, relatively, to
the paper's 156 retweets/user mean) so similarity-based methods operate
in the regime the paper studied.
"""

from __future__ import annotations

import pytest

from repro.baselines import (
    BayesRecommender,
    CollaborativeFilteringRecommender,
    GraphJetRecommender,
)
from repro.core import RetweetProfiles, SimGraphBuilder, SimGraphRecommender
from repro.data import temporal_split
from repro.eval import SweepReport, evaluate_sweep, run_replay, select_target_users
from repro.synth import SynthConfig, generate_dataset

#: The k sweep of the paper's Figures 7-15.
K_VALUES = [10, 20, 30, 50, 100, 200]

#: Evaluation-scale synthetic corpus (see DESIGN.md §2 for calibration).
BENCH_CONFIG = SynthConfig(
    n_users=2000,
    tweets_alpha=1.2,
    min_tweets_per_user=2,
    max_tweets_per_user=250,
    seed=42,
)

PER_STRATUM = 250


def make_methods() -> list:
    """Fresh instances of the four §6 competitors, paper defaults."""
    return [
        SimGraphRecommender(),
        CollaborativeFilteringRecommender(),
        BayesRecommender(),
        GraphJetRecommender(),
    ]


@pytest.fixture(scope="session")
def bench_dataset():
    """The shared evaluation corpus (generated once)."""
    return generate_dataset(BENCH_CONFIG)


@pytest.fixture(scope="session")
def bench_split(bench_dataset):
    """Chronological 90/10 split of the eligible retweet stream."""
    return temporal_split(bench_dataset)


@pytest.fixture(scope="session")
def bench_targets(bench_split):
    """Stratified target users (paper §6.1, scaled)."""
    return select_target_users(
        bench_split.train, per_stratum=PER_STRATUM, seed=0
    )


@pytest.fixture(scope="session")
def bench_profiles(bench_split):
    """Retweet profiles of the train split."""
    return RetweetProfiles(bench_split.train)


@pytest.fixture(scope="session")
def bench_simgraph(bench_dataset, bench_profiles):
    """The SimGraph built on the train split (shared by many benches)."""
    return SimGraphBuilder(tau=0.001).build(
        bench_dataset.follow_graph, bench_profiles
    )


@pytest.fixture(scope="session")
def sparse_simgraph(bench_dataset, bench_profiles):
    """A sparsity-matched SimGraph for the structural benches.

    The paper's SimGraph settles at mean out-degree 5.9 (Table 4) because
    profile overlap is rare at 1.1M-user scale; a small synthetic corpus
    overlaps far more, so Table 4 / Figure 5 characterize the graph at
    the paper's sparsity (strongest ~6 influencers per user) to measure
    the same structural regime.
    """
    return SimGraphBuilder(tau=0.001, max_influencers=6).build(
        bench_dataset.follow_graph, bench_profiles
    )


@pytest.fixture(scope="session")
def replay_results(bench_dataset, bench_split, bench_targets):
    """name -> ReplayResult for the four methods (the expensive pass)."""
    results = {}
    for method in make_methods():
        results[method.name] = run_replay(
            method,
            bench_dataset,
            bench_split.train,
            bench_split.test,
            bench_targets.all_users,
        )
    return results


@pytest.fixture(scope="session")
def sweep_report(bench_dataset, replay_results):
    """Metric grid over K_VALUES for all methods."""
    series = {
        name: evaluate_sweep(result, K_VALUES, bench_dataset.popularity)
        for name, result in replay_results.items()
    }
    return SweepReport(list(K_VALUES), series)


@pytest.fixture
def emit(capsys):
    """Print a report table even under pytest's output capture."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            print("\n" + text)

    return _emit
